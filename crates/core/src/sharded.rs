//! Sharded concurrent matching.
//!
//! [`ShardedSToPSS`] partitions subscriptions across N shards by a hash of
//! their [`SubId`]; each shard owns a complete [`SToPSS`] (semantic stages
//! plus an independent [`stopss_matching::MatchingEngine`]). A publication
//! is fanned out to every shard on a crossbeam scoped-thread worker pool
//! and the per-shard match sets are merged deterministically (sorted by
//! `SubId`), so the result — matches, provenance, ordering, and aggregated
//! [`MatcherStats`] — is byte-identical to the single-threaded matcher.
//! The S-ToPSS paper treats the syntactic engine as a black box precisely
//! so the semantic layer can scale this way: shards never communicate
//! during matching, and throughput scales with cores instead of being
//! serialized behind one monolithic engine.
//!
//! # Stats aggregation
//!
//! Event-side work (closure computation, event materialization) is
//! replicated per shard, but its counters are *identical* across shards —
//! derivation depends only on the ontology and the event, never on which
//! subscriptions a shard holds. Aggregation therefore takes event-side
//! counters (`published`, `derived_events`, `closure_pairs`,
//! `truncations`) from a single shard and sums the subscription-side
//! counters (`verifications`, `verify_rejections`, `rewrite_truncations`),
//! reproducing the single-threaded numbers exactly. The differential suite
//! in `tests/sharded_differential.rs` pins this equivalence across every
//! engine × strategy × stage-mask combination.

use std::sync::Arc;

use stopss_ontology::SemanticSource;
use stopss_types::{fx_hash_one, Event, SharedInterner, SubId, Subscription};

use crate::config::Config;
use crate::matcher::{MatcherStats, PublishResult, SToPSS};
use crate::provenance::Match;
use crate::tolerance::Tolerance;

/// The shard a subscription id is routed to, out of `shards`.
///
/// Stable across processes and platforms (Fx mix over the raw id), so
/// fixtures, golden tests and replicated brokers agree on placement.
pub fn shard_of(id: SubId, shards: usize) -> usize {
    debug_assert!(shards > 0);
    (fx_hash_one(&id.0) % shards as u64) as usize
}

/// A sharded, concurrent semantic matcher with the same observable
/// behaviour as [`SToPSS`].
///
/// Subscriptions are partitioned by [`shard_of`]; publications fan out to
/// all shards in parallel (scoped worker threads, at most
/// [`Config::effective_parallelism`] of them) and merge into one ordered
/// match set. See the module docs for the equivalence argument.
pub struct ShardedSToPSS {
    config: Config,
    source: Arc<dyn SemanticSource>,
    interner: SharedInterner,
    shards: Vec<SToPSS>,
    /// Lifetime stats accumulated before the last reshard (shard vectors
    /// are rebuilt from scratch when the shard count changes, but stats
    /// must survive reconfiguration exactly as they do on [`SToPSS`]).
    carried: MatcherStats,
}

impl ShardedSToPSS {
    /// Creates a matcher with `config.effective_shards()` shards over
    /// `source`, using `interner` for all terms.
    pub fn new(config: Config, source: Arc<dyn SemanticSource>, interner: SharedInterner) -> Self {
        let shards = (0..config.effective_shards())
            .map(|_| SToPSS::new(config, source.clone(), interner.clone()))
            .collect();
        ShardedSToPSS { config, source, interner, shards, carried: MatcherStats::default() }
    }

    /// The interner shared with publishers/subscribers.
    pub fn interner(&self) -> &SharedInterner {
        &self.interner
    }

    /// The active configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The semantic knowledge source.
    pub fn source(&self) -> &Arc<dyn SemanticSource> {
        &self.source
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard subscription `id` is (or would be) routed to.
    pub fn shard_for(&self, id: SubId) -> usize {
        shard_of(id, self.shards.len())
    }

    /// Aggregated lifetime statistics, identical to what a single
    /// [`SToPSS`] over the same inputs would report (see module docs).
    pub fn stats(&self) -> MatcherStats {
        let event_side = *self.shards[0].stats();
        let mut agg = self.carried;
        agg.published += event_side.published;
        agg.derived_events += event_side.derived_events;
        agg.closure_pairs += event_side.closure_pairs;
        agg.truncations += event_side.truncations;
        for shard in &self.shards {
            let s = shard.stats();
            agg.verifications += s.verifications;
            agg.verify_rejections += s.verify_rejections;
            agg.rewrite_truncations += s.rewrite_truncations;
        }
        agg
    }

    /// Number of user subscriptions across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(SToPSS::len).sum()
    }

    /// True if no subscriptions are registered.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(SToPSS::is_empty)
    }

    /// The original subscription registered under `id`.
    pub fn subscription(&self, id: SubId) -> Option<&Subscription> {
        self.shards[self.shard_for(id)].subscription(id)
    }

    /// The effective (clamped) tolerance of subscription `id`.
    pub fn tolerance(&self, id: SubId) -> Option<Tolerance> {
        self.shards[self.shard_for(id)].tolerance(id)
    }

    /// Registers a subscription with the system-wide tolerance.
    pub fn subscribe(&mut self, sub: Subscription) {
        let shard = self.shard_for(sub.id());
        self.shards[shard].subscribe(sub);
    }

    /// Registers a subscription with a subscriber-specific tolerance.
    pub fn subscribe_with_tolerance(&mut self, sub: Subscription, tolerance: Tolerance) {
        let shard = self.shard_for(sub.id());
        self.shards[shard].subscribe_with_tolerance(sub, tolerance);
    }

    /// Removes a subscription; returns whether it existed.
    pub fn unsubscribe(&mut self, id: SubId) -> bool {
        let shard = self.shard_for(id);
        self.shards[shard].unsubscribe(id)
    }

    /// Publishes one event, returning the matched subscriptions ordered by
    /// `SubId` — the same order the single-threaded matcher produces.
    pub fn publish(&mut self, event: &Event) -> Vec<Match> {
        self.publish_detailed(event).matches
    }

    /// Publishes one event, returning matches plus processing counters.
    pub fn publish_detailed(&mut self, event: &Event) -> PublishResult {
        self.publish_batch_detailed(std::slice::from_ref(event))
            .pop()
            .expect("one event in, one result out")
    }

    /// Publishes a batch of events, fanning each out to every shard on the
    /// worker pool, and returns the match set of each event in order.
    pub fn publish_batch(&mut self, events: &[Event]) -> Vec<Vec<Match>> {
        self.publish_batch_detailed(events).into_iter().map(|r| r.matches).collect()
    }

    /// Publishes a batch of events, returning the detailed result of each.
    ///
    /// The batch is the unit of fan-out: every worker thread walks the
    /// whole batch against its shards, so one scope (and one round of
    /// thread spawns) amortizes over `events.len()` publications.
    pub fn publish_batch_detailed(&mut self, events: &[Event]) -> Vec<PublishResult> {
        if events.is_empty() {
            return Vec::new();
        }
        let workers = self.config.effective_parallelism();
        // Scoped workers are real OS threads, so spawning must be
        // amortized: batches always fan out; a single event (the broker's
        // per-publish path) fans out only when the caller asked for a
        // worker pool explicitly (`parallelism > 0`, e.g. semantics-heavy
        // ontologies where per-shard closure work dwarfs a thread spawn)
        // and otherwise matches sequentially.
        let fan_out = workers > 1
            && self.shards.len() > 1
            && (events.len() > 1 || self.config.parallelism > 0);
        // per_shard[s][k] = shard s's result for event k.
        let per_shard: Vec<Vec<PublishResult>> = if !fan_out {
            self.shards.iter_mut().map(|shard| run_shard(shard, events)).collect()
        } else {
            let chunk = self.shards.len().div_ceil(workers);
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .chunks_mut(chunk)
                    .map(|chunk_shards| {
                        scope.spawn(move |_| {
                            chunk_shards
                                .iter_mut()
                                .map(|shard| run_shard(shard, events))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                // Handles joined in spawn order, so shard order is preserved.
                handles.into_iter().flat_map(|h| h.join().expect("shard worker panicked")).collect()
            })
            .expect("shard scope panicked")
        };
        merge_results(events.len(), per_shard)
    }

    /// Switches the enabled stages on every shard and rebuilds their
    /// engine subscriptions.
    pub fn set_stages(&mut self, stages: crate::tolerance::StageMask) {
        self.config.stages = stages;
        for shard in &mut self.shards {
            shard.set_stages(stages);
        }
    }

    /// Replaces the configuration (engine, strategy, shard count, …). If
    /// the shard count changes, subscriptions are redistributed; either
    /// way every shard rebuilds its engine state.
    pub fn reconfigure(&mut self, config: Config) {
        if config.effective_shards() == self.shards.len() {
            self.config = config;
            for shard in &mut self.shards {
                shard.reconfigure(config);
            }
            return;
        }
        let mut all: Vec<(Subscription, Tolerance)> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            all.extend(shard.subscriptions_with_tolerances());
        }
        all.sort_unstable_by_key(|(sub, _)| sub.id());
        let carried = self.stats();
        *self = ShardedSToPSS::new(config, self.source.clone(), self.interner.clone());
        self.carried = carried;
        for (sub, tolerance) in all {
            self.subscribe_with_tolerance(sub, tolerance);
        }
    }
}

/// Runs the whole batch through one shard sequentially.
fn run_shard(shard: &mut SToPSS, events: &[Event]) -> Vec<PublishResult> {
    events.iter().map(|event| shard.publish_detailed(event)).collect()
}

/// Merges per-shard results into one result per event: matches are
/// concatenated and sorted by `SubId` (shards partition ids, so there are
/// no duplicates); event-side counters come from shard 0, where every
/// shard reports the same value (derivation is engine-independent).
fn merge_results(events: usize, per_shard: Vec<Vec<PublishResult>>) -> Vec<PublishResult> {
    let mut merged: Vec<PublishResult> = Vec::with_capacity(events);
    for k in 0..events {
        let first = &per_shard[0][k];
        let mut result = PublishResult {
            matches: Vec::new(),
            derived_events: first.derived_events,
            closure_pairs: first.closure_pairs,
            truncated: first.truncated,
        };
        for shard_results in &per_shard {
            let r = &shard_results[k];
            debug_assert_eq!(
                (r.derived_events, r.closure_pairs, r.truncated),
                (first.derived_events, first.closure_pairs, first.truncated),
                "event-side counters must not depend on shard contents"
            );
            result.matches.extend_from_slice(&r.matches);
        }
        result.matches.sort_unstable_by_key(|m| m.sub);
        merged.push(result);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Strategy;
    use crate::provenance::MatchOrigin;
    use crate::tolerance::StageMask;
    use stopss_matching::EngineKind;
    use stopss_ontology::Ontology;
    use stopss_types::{EventBuilder, Interner, SubscriptionBuilder};

    struct World {
        interner: SharedInterner,
        source: Arc<Ontology>,
        subs: Vec<Subscription>,
        events: Vec<Event>,
    }

    /// A taxonomy world with enough subscriptions that every shard count
    /// in the tests gets a non-empty partition.
    fn world() -> World {
        let mut i = Interner::new();
        let mut o = Ontology::new("jobs");
        let degree = i.intern("degree");
        let grad = i.intern("graduate_degree");
        let phd = i.intern("phd");
        o.taxonomy.add_isa(grad, degree, &i).unwrap();
        o.taxonomy.add_isa(phd, grad, &i).unwrap();

        let mut subs = Vec::new();
        for k in 0..16u64 {
            let term = ["degree", "graduate_degree", "phd"][k as usize % 3];
            subs.push(
                SubscriptionBuilder::new(&mut i).term_eq("credential", term).build(SubId(k + 1)),
            );
        }
        let events = vec![
            EventBuilder::new(&mut i).term("credential", "phd").build(),
            EventBuilder::new(&mut i).term("credential", "degree").build(),
            EventBuilder::new(&mut i).term("credential", "other").build(),
        ];
        World { interner: SharedInterner::from_interner(i), source: Arc::new(o), subs, events }
    }

    fn matchers(w: &World, shards: usize) -> (SToPSS, ShardedSToPSS) {
        let config = Config::default().with_shards(shards);
        let mut single = SToPSS::new(config, w.source.clone(), w.interner.clone());
        let mut sharded = ShardedSToPSS::new(config, w.source.clone(), w.interner.clone());
        for sub in &w.subs {
            single.subscribe(sub.clone());
            sharded.subscribe(sub.clone());
        }
        (single, sharded)
    }

    #[test]
    fn shard_routing_is_stable_and_total() {
        for shards in [1usize, 2, 3, 8] {
            for id in 0..100u64 {
                let s = shard_of(SubId(id), shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(SubId(id), shards), "routing must be deterministic");
            }
        }
    }

    #[test]
    fn sharded_matches_equal_single_threaded() {
        let w = world();
        for shards in [1usize, 2, 5, 8] {
            let (mut single, mut sharded) = matchers(&w, shards);
            assert_eq!(sharded.shard_count(), shards);
            assert_eq!(sharded.len(), single.len());
            for event in &w.events {
                let want = single.publish(event);
                let got = sharded.publish(event);
                assert_eq!(got, want, "shards={shards} diverged");
            }
            assert_eq!(sharded.stats(), *single.stats(), "shards={shards} stats diverged");
        }
    }

    #[test]
    fn batch_equals_per_event_publish() {
        let w = world();
        let (mut single, mut sharded) = matchers(&w, 4);
        let batched = sharded.publish_batch(&w.events);
        let sequential: Vec<Vec<Match>> = w.events.iter().map(|e| single.publish(e)).collect();
        assert_eq!(batched, sequential);
        assert_eq!(sharded.publish_batch(&[]), Vec::<Vec<Match>>::new());
    }

    #[test]
    fn parallelism_cap_does_not_change_results() {
        let w = world();
        for parallelism in [1usize, 2, 3] {
            let config = Config::default().with_shards(8).with_parallelism(parallelism);
            let mut sharded = ShardedSToPSS::new(config, w.source.clone(), w.interner.clone());
            let mut single = SToPSS::new(config, w.source.clone(), w.interner.clone());
            for sub in &w.subs {
                sharded.subscribe(sub.clone());
                single.subscribe(sub.clone());
            }
            assert_eq!(sharded.publish_batch(&w.events), single.publish_batch(&w.events));
            // Explicit parallelism also fans out single-event publishes;
            // results must not change.
            assert_eq!(sharded.publish(&w.events[0]), single.publish(&w.events[0]));
        }
    }

    #[test]
    fn stats_survive_resharding() {
        let w = world();
        let (mut single, mut sharded) = matchers(&w, 2);
        for event in &w.events {
            single.publish(event);
            sharded.publish(event);
        }
        let before = sharded.stats();
        assert_eq!(before, *single.stats());
        assert!(before.published > 0);
        sharded.reconfigure(Config::default().with_shards(5));
        single.reconfigure(Config::default());
        let after = sharded.stats();
        assert_eq!(after.published, before.published, "reshard must not zero lifetime stats");
        assert_eq!(after, *single.stats(), "stats must track the single-threaded matcher");
        // New publishes keep accumulating on top of the carried baseline.
        sharded.publish(&w.events[0]);
        single.publish(&w.events[0]);
        assert_eq!(sharded.stats(), *single.stats());
    }

    #[test]
    fn subscription_lookup_and_unsubscribe_route_by_hash() {
        let w = world();
        let (_, mut sharded) = matchers(&w, 8);
        let id = w.subs[0].id();
        assert_eq!(sharded.subscription(id), Some(&w.subs[0]));
        assert!(sharded.tolerance(id).is_some());
        assert!(sharded.unsubscribe(id));
        assert!(!sharded.unsubscribe(id));
        assert_eq!(sharded.subscription(id), None);
        assert_eq!(sharded.len(), w.subs.len() - 1);
        assert!(!sharded.is_empty());
    }

    #[test]
    fn set_stages_switches_all_shards() {
        let w = world();
        let (_, mut sharded) = matchers(&w, 4);
        let semantic = sharded.publish(&w.events[0]).len();
        sharded.set_stages(StageMask::syntactic());
        let syntactic = sharded.publish(&w.events[0]).len();
        assert!(syntactic < semantic, "hierarchy matches must vanish in syntactic mode");
        sharded.set_stages(StageMask::all());
        assert_eq!(sharded.publish(&w.events[0]).len(), semantic);
    }

    #[test]
    fn reconfigure_can_reshard() {
        let w = world();
        let (mut single, mut sharded) = matchers(&w, 2);
        let want: Vec<Vec<Match>> = w.events.iter().map(|e| single.publish(e)).collect();
        sharded.reconfigure(
            Config::default()
                .with_shards(7)
                .with_engine(EngineKind::Trie)
                .with_strategy(Strategy::SubscriptionRewrite),
        );
        assert_eq!(sharded.shard_count(), 7);
        assert_eq!(sharded.len(), w.subs.len());
        let got = sharded.publish_batch(&w.events);
        for (g, s) in got.iter().zip(&want) {
            assert_eq!(g, s, "match sets must survive resharding + engine swap");
        }
        // Same shard count: reconfigure in place.
        sharded.reconfigure(Config::default().with_shards(7));
        assert_eq!(sharded.len(), w.subs.len());
    }

    #[test]
    fn per_subscription_tolerance_respected_across_shards() {
        let w = world();
        let config = Config::default().with_shards(8);
        let mut sharded = ShardedSToPSS::new(config, w.source.clone(), w.interner.clone());
        for sub in &w.subs {
            sharded.subscribe_with_tolerance(sub.clone(), Tolerance::syntactic());
        }
        let matches = sharded.publish(&w.events[0]);
        assert!(
            matches.iter().all(|m| m.origin == MatchOrigin::Syntactic),
            "syntactic tolerance must filter semantic matches on every shard"
        );
        let stats = sharded.stats();
        assert!(stats.verifications >= stats.verify_rejections);
        assert!(stats.verify_rejections > 0);
    }
}
