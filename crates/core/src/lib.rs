//! # stopss-core
//!
//! The primary contribution of the S-ToPSS paper: a semantic layer that
//! wraps unmodified content-based matching engines so that syntactically
//! different but semantically related publications and subscriptions match
//! (Petrovic, Burcea, Jacobsen — VLDB 2003).
//!
//! The architecture follows Figure 1 of the paper:
//!
//! ```text
//! event ──▶ synonym stage ──▶ hierarchy stage ⇄ mapping stage ──▶ engine ──▶ matches
//! sub  ───▶ synonym stage ──▶ (strategy-dependent rewrite)   ──▶ engine
//! ```
//!
//! * [`semantic_closure`] — the bounded fixpoint of the hierarchy/mapping
//!   interplay, flattened into one multi-valued event;
//! * [`Strategy`] — three ways to drive the engine (paper-faithful event
//!   materialization, flattened closure, subscription rewriting);
//! * [`Tolerance`] / [`StageMask`] — the information-loss knob (§3.2);
//! * [`SToPSS`] — the matcher: subscribe / publish / provenance;
//! * [`frontend`] — the shared event-side semantic pass:
//!   [`prepare_event`] computes a [`PreparedEvent`] artifact (closure or
//!   materialized derivation lattice + counters + the per-publication
//!   [`TierCache`] serving tolerance verification and provenance
//!   classification) once per publication, and [`SemanticFrontEnd`] is
//!   the detachable, epoch-stamped handle that runs it against one
//!   consistent snapshot, fully decoupled from the matcher;
//! * [`ShardedSToPSS`] — the same matcher partitioned across N
//!   hash-sharded engines behind a two-stage pipeline (shared front-end,
//!   then scoped-thread shard matching) with a batched
//!   [`ShardedSToPSS::publish_batch`] API; results are byte-identical to
//!   [`SToPSS`] (see `sharded` module docs for the argument);
//! * [`oracle`] — the executable definition of semantic matching, used as
//!   ground truth by the property tests.

#![warn(missing_docs)]

pub mod closure;
pub mod config;
pub mod frontend;
pub mod matcher;
pub mod oracle;
pub mod provenance;
pub mod sharded;
pub mod strategy;
pub mod tolerance;

pub use closure::{
    semantic_closure, synonym_resolve_event, synonym_resolve_subscription, ClosedEvent,
    ClosureLimits, PairInfo,
};
pub use config::{Config, Limits, Strategy};
pub use frontend::{
    classify_with_tiers, prepare_event, PreparedEvent, SemanticFrontEnd, TierCache,
};
pub use matcher::{MatcherStats, PublishResult, SToPSS};
pub use oracle::{classify_match, semantic_match, CLASSIFY_DISTANCE_CAP};
pub use provenance::{Match, MatchOrigin, OriginCounts};
pub use sharded::{shard_of, ShardedSToPSS, PIPELINE_CHUNK};
pub use strategy::{
    expand_subscription, materialize_closure, materialize_match, MaterializeOutcome,
    MaterializedEvents, RewriteExpansion,
};
pub use tolerance::{StageMask, Tolerance};
