//! The semantic closure of an event.
//!
//! Figure 1 of the paper: an incoming event passes the synonym stage, then
//! the concept-hierarchy and mapping-function stages, which "can be
//! executed multiple times … the concept hierarchy stage can create new
//! events for which additional mapping functions exist and vice versa"
//! (§3.2). This module computes the *flattened* least fixpoint of that
//! interplay: instead of materializing separate derived events, every
//! derivable attribute–value pair is appended to one multi-valued event
//! (under ∃-semantics this yields the union of everything the paper's
//! per-event formulation can match — see `strategy.rs` for the
//! materializing variant and the equivalence discussion).
//!
//! The fixpoint is bounded (`max_rounds`, `max_pairs`): a mapping function
//! such as `x → x + 1` would otherwise derive forever. Hitting a bound
//! flags the closure as truncated; matching remains sound (no false
//! matches), merely incomplete, and the truncation counters surface in the
//! experiment reports.

use std::borrow::Cow;

use stopss_ontology::SemanticSource;
use stopss_types::{Event, Interner, Operator, Subscription, Symbol, Value};

use crate::tolerance::StageMask;

/// Bounds on the closure fixpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClosureLimits {
    /// Maximum total pairs in the closed event (base + derived).
    pub max_pairs: usize,
    /// Maximum hierarchy/mapping alternations.
    pub max_rounds: u32,
}

impl Default for ClosureLimits {
    fn default() -> Self {
        ClosureLimits { max_pairs: 512, max_rounds: 8 }
    }
}

/// Per-pair derivation metadata, aligned with the closed event's pairs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PairInfo {
    /// Minimal generalization distance over every pair this one is
    /// derivable from in one hierarchy application (component-wise
    /// maximum of attribute and value distance per derivation; 0 for base
    /// and mapping-produced pairs). Recording the *minimum* is what lets
    /// the provenance classifier read the smallest sufficient tolerance
    /// straight off the unbounded closure instead of re-closing the event
    /// once per candidate distance.
    pub distance: u32,
    /// True if a mapping function produced this pair.
    pub via_mapping: bool,
    /// True if the hierarchy stage derived this pair (such pairs are not
    /// generalized again — ancestor sets are already transitive).
    pub hierarchy_derived: bool,
}

/// An event together with every semantically derivable pair.
#[derive(Clone, Debug)]
pub struct ClosedEvent {
    /// The widened event (base pairs first, derived pairs appended).
    pub event: Event,
    /// Metadata for each pair of `event`.
    pub info: Vec<PairInfo>,
    /// Number of pairs the raw event contributed.
    pub base_pairs: usize,
    /// Hierarchy/mapping rounds executed.
    pub rounds: u32,
    /// True if a limit stopped the fixpoint early.
    pub truncated: bool,
    /// Names of the mapping functions that fired (deduplicated).
    pub mappings_fired: Vec<String>,
}

impl ClosedEvent {
    /// Number of derived (non-base) pairs.
    pub fn derived_pairs(&self) -> usize {
        self.event.len() - self.base_pairs
    }
}

/// Rewrites an event into canonical root terms: attribute names always,
/// symbol values too (they are categorical terms). Numeric and boolean
/// values pass through.
///
/// Runs once per publication (and once per verification class through the
/// closure), so the common case — no term of the event has a synonym
/// mapping — returns the input borrowed: the function itself allocates
/// nothing, and the closure paths that must own their base event fall
/// back to a plain buffer clone instead of a pair-by-pair rebuild
/// through the synonym table; the same fast path
/// [`synonym_resolve_subscription`] takes at subscribe time. When some
/// term does resolve, the prefix scanned before it is copied verbatim,
/// so no pair is pushed through the synonym table twice.
pub fn synonym_resolve_event<'a>(event: &'a Event, source: &dyn SemanticSource) -> Cow<'a, Event> {
    let resolve_pair = |(attr, value): &(Symbol, Value)| {
        let attr = source.resolve_synonym(*attr);
        let value = match value {
            Value::Sym(s) => Value::Sym(source.resolve_synonym(*s)),
            other => *other,
        };
        (attr, value)
    };
    let pairs = event.pairs();
    let first_changed = pairs.iter().position(|pair| resolve_pair(pair) != *pair);
    let Some(first_changed) = first_changed else {
        return Cow::Borrowed(event);
    };
    Cow::Owned(
        pairs[..first_changed]
            .iter()
            .copied()
            .chain(pairs[first_changed..].iter().map(resolve_pair))
            .collect(),
    )
}

/// Rewrites a subscription into canonical root terms. Attribute names are
/// resolved for every operator; symbol *values* only for `Eq`/`Ne`, where
/// they denote categorical terms. String-operator patterns (`Prefix`,
/// `Suffix`, `Contains`) are fragments, not terms — rewriting `"teach"`
/// because some ontology maps `teach → instruct` would corrupt them.
///
/// Runs once per subscribe and once per candidate in the verify oracle,
/// so the common case — no term of the subscription has a synonym
/// mapping — returns the input borrowed, with no clone or allocation.
pub fn synonym_resolve_subscription<'a>(
    sub: &'a Subscription,
    source: &dyn SemanticSource,
) -> Cow<'a, Subscription> {
    let unchanged = sub.predicates().iter().all(|p| {
        source.resolve_synonym(p.attr) == p.attr
            && match (p.op, p.value) {
                (Operator::Eq | Operator::Ne, Value::Sym(s)) => source.resolve_synonym(s) == s,
                _ => true,
            }
    });
    if unchanged {
        return Cow::Borrowed(sub);
    }
    let predicates = sub
        .predicates()
        .iter()
        .map(|p| {
            let attr = source.resolve_synonym(p.attr);
            let value = match (p.op, p.value) {
                (Operator::Eq | Operator::Ne, Value::Sym(s)) => {
                    Value::Sym(source.resolve_synonym(s))
                }
                (_, v) => v,
            };
            stopss_types::Predicate::new(attr, p.op, value)
        })
        .collect();
    Cow::Owned(Subscription::new(sub.id(), predicates))
}

/// Computes the bounded semantic closure of `event`.
///
/// * `stages` selects which machinery runs (Figure 1's pluggable stages);
/// * `max_distance` bounds each generalization step component-wise (the
///   information-loss knob);
/// * `now_year` feeds mapping expressions' `now`.
pub fn semantic_closure(
    event: &Event,
    source: &dyn SemanticSource,
    stages: StageMask,
    max_distance: Option<u32>,
    now_year: i64,
    interner: &Interner,
    limits: &ClosureLimits,
) -> ClosedEvent {
    let base = if stages.synonym() {
        synonym_resolve_event(event, source).into_owned()
    } else {
        event.clone()
    };
    let base_pairs = base.len();
    let mut closed = ClosedEvent {
        info: vec![
            PairInfo { distance: 0, via_mapping: false, hierarchy_derived: false };
            base_pairs
        ],
        event: base,
        base_pairs,
        rounds: 0,
        truncated: false,
        mappings_fired: Vec::new(),
    };
    if stages.is_syntactic() || (!stages.hierarchy() && !stages.mapping()) {
        return closed;
    }
    if max_distance == Some(0) && !stages.mapping() {
        return closed; // zero tolerance disables generalization entirely
    }

    // Index of the first pair the hierarchy stage has not yet examined.
    let mut hierarchy_cursor = 0usize;
    for round in 0..limits.max_rounds {
        let len_before = closed.event.len();

        if stages.hierarchy() && max_distance != Some(0) {
            expand_hierarchy(
                &mut closed,
                source,
                max_distance,
                &mut hierarchy_cursor,
                len_before,
                limits,
            );
        }
        if stages.mapping() && closed.event.len() < limits.max_pairs {
            apply_mappings(&mut closed, source, stages, now_year, interner, limits);
        }

        closed.rounds = round + 1;
        if closed.event.len() == len_before {
            break; // fixpoint
        }
        if closed.event.len() >= limits.max_pairs {
            closed.truncated = true;
            break;
        }
        if round + 1 == limits.max_rounds {
            closed.truncated = true;
        }
    }
    closed
}

/// Generalizes every not-yet-processed, non-hierarchy-derived pair:
/// `(a, v)` entails `(a', v')` for ancestors `a'` of `a` and `v'` of `v`
/// (rule R1). Only generalization is performed — never specialization —
/// which encodes rule R2 ("events that contain more generalized terms than
/// those used in the subscriptions do not match").
fn expand_hierarchy(
    closed: &mut ClosedEvent,
    source: &dyn SemanticSource,
    max_distance: Option<u32>,
    cursor: &mut usize,
    upto: usize,
    limits: &ClosureLimits,
) {
    let admits = |d: u32| max_distance.is_none_or(|k| d <= k);
    let start = *cursor;
    *cursor = upto;
    for idx in start..upto {
        if closed.info[idx].hierarchy_derived {
            continue;
        }
        let (attr, value) = closed.event.pairs()[idx];
        // Ancestor alternatives: (term, distance), distance 0 = unchanged.
        let mut attr_alts: Vec<(Symbol, u32)> = vec![(attr, 0)];
        source.for_each_ancestor(attr, &mut |anc, d| {
            if admits(d) {
                attr_alts.push((anc, d));
            }
        });
        let mut value_alts: Vec<(Value, u32)> = vec![(value, 0)];
        if let Value::Sym(v) = value {
            source.for_each_ancestor(v, &mut |anc, d| {
                if admits(d) {
                    value_alts.push((Value::Sym(anc), d));
                }
            });
        }
        for &(a, da) in &attr_alts {
            for &(v, dv) in &value_alts {
                if da == 0 && dv == 0 {
                    continue; // the pair itself
                }
                if closed.event.len() >= limits.max_pairs {
                    closed.truncated = true;
                    return;
                }
                let derived = da.max(dv);
                match closed.event.pairs().iter().position(|&(pa, pv)| pa == a && pv == v) {
                    // A pair can be derivable from several source pairs at
                    // different distances; keep the minimum so the recorded
                    // distance is exactly "smallest bound that admits it".
                    Some(existing) => {
                        if closed.info[existing].distance > derived {
                            closed.info[existing].distance = derived;
                        }
                    }
                    None => {
                        closed.event.push(a, v);
                        closed.info.push(PairInfo {
                            distance: derived,
                            via_mapping: closed.info[idx].via_mapping,
                            hierarchy_derived: true,
                        });
                    }
                }
            }
        }
    }
}

/// Runs every candidate mapping function against the current widened event
/// and appends its productions (synonym-resolved, so derived pairs live in
/// the same canonical term space).
fn apply_mappings(
    closed: &mut ClosedEvent,
    source: &dyn SemanticSource,
    stages: StageMask,
    now_year: i64,
    interner: &Interner,
    limits: &ClosureLimits,
) {
    // The sink borrows `closed.event` immutably while producing, so collect
    // first and append afterwards.
    let mut produced: Vec<(String, Vec<(Symbol, Value)>)> = Vec::new();
    source.apply_mappings(&closed.event, interner, now_year, &mut |name, pairs| {
        produced.push((name.to_owned(), pairs));
    });
    for (name, pairs) in produced {
        let mut fired = false;
        for (attr, value) in pairs {
            if closed.event.len() >= limits.max_pairs {
                closed.truncated = true;
                return;
            }
            let (attr, value) = if stages.synonym() {
                let attr = source.resolve_synonym(attr);
                let value = match value {
                    Value::Sym(s) => Value::Sym(source.resolve_synonym(s)),
                    other => other,
                };
                (attr, value)
            } else {
                (attr, value)
            };
            if closed.event.push_unique(attr, value) {
                closed.info.push(PairInfo {
                    distance: 0,
                    via_mapping: true,
                    hierarchy_derived: false,
                });
                fired = true;
            }
        }
        if fired && !closed.mappings_fired.contains(&name) {
            closed.mappings_fired.push(name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stopss_ontology::{Expr, MappingFunction, Ontology, PatternItem, Production};
    use stopss_types::{EventBuilder, Interner};

    fn jobs_ontology(i: &mut Interner) -> Ontology {
        let mut o = Ontology::new("jobs");
        let university = i.intern("university");
        let school = i.intern("school");
        o.synonyms.add_synonym(university, school, i).unwrap();
        let degree = i.intern("degree");
        let grad = i.intern("graduate_degree");
        let phd = i.intern("phd");
        o.taxonomy.add_isa(grad, degree, i).unwrap();
        o.taxonomy.add_isa(phd, grad, i).unwrap();
        let gy = i.intern("graduation_year");
        let pe = i.intern("professional_experience");
        o.mappings
            .register(MappingFunction::new(
                "experience",
                vec![PatternItem { attr: gy, guard: None }],
                vec![Production { attr: pe, expr: Expr::sub(Expr::Now, Expr::Attr(gy)) }],
            ))
            .unwrap();
        o
    }

    #[test]
    fn synonym_stage_canonicalizes_attrs_and_values() {
        let mut i = Interner::new();
        let o = jobs_ontology(&mut i);
        let e = EventBuilder::new(&mut i).term("school", "toronto").build();
        let resolved = synonym_resolve_event(&e, &o);
        let university = i.get("university").unwrap();
        assert!(resolved.has_attr(university));
        assert!(!resolved.has_attr(i.get("school").unwrap()));
    }

    #[test]
    fn event_without_synonyms_resolves_borrowed() {
        let mut i = Interner::new();
        let o = jobs_ontology(&mut i);
        // Neither `credential` nor `phd` has a synonym root; numeric values
        // are exempt outright.
        let e = EventBuilder::new(&mut i)
            .term("credential", "phd")
            .pair("graduation_year", 1993i64)
            .build();
        let resolved = synonym_resolve_event(&e, &o);
        assert!(matches!(resolved, Cow::Borrowed(_)), "no mapping applies: no clone");
        assert_eq!(*resolved, e);
    }

    #[test]
    fn closure_generalizes_values_transitively() {
        let mut i = Interner::new();
        let o = jobs_ontology(&mut i);
        let e = EventBuilder::new(&mut i).term("credential", "phd").build();
        let closed =
            semantic_closure(&e, &o, StageMask::all(), None, 2003, &i, &ClosureLimits::default());
        let credential = i.get("credential").unwrap();
        let grad = Value::Sym(i.get("graduate_degree").unwrap());
        let degree = Value::Sym(i.get("degree").unwrap());
        assert!(closed.event.values_for(credential).any(|v| *v == grad));
        assert!(closed.event.values_for(credential).any(|v| *v == degree));
        assert_eq!(closed.base_pairs, 1);
        assert_eq!(closed.derived_pairs(), 2);
        assert!(!closed.truncated);
        // Distances recorded per derived pair.
        let distances: Vec<u32> = closed.info.iter().map(|p| p.distance).collect();
        assert_eq!(distances, vec![0, 1, 2]);
    }

    #[test]
    fn distance_bound_prunes_far_ancestors() {
        let mut i = Interner::new();
        let o = jobs_ontology(&mut i);
        let e = EventBuilder::new(&mut i).term("credential", "phd").build();
        let closed = semantic_closure(
            &e,
            &o,
            StageMask::all(),
            Some(1),
            2003,
            &i,
            &ClosureLimits::default(),
        );
        assert_eq!(closed.derived_pairs(), 1, "only graduate_degree at distance 1");
        let zero = semantic_closure(
            &e,
            &o,
            StageMask::all().without(StageMask::MAPPING),
            Some(0),
            2003,
            &i,
            &ClosureLimits::default(),
        );
        assert_eq!(zero.derived_pairs(), 0);
    }

    #[test]
    fn mapping_stage_appends_computed_pairs() {
        let mut i = Interner::new();
        let o = jobs_ontology(&mut i);
        let e = EventBuilder::new(&mut i).pair("graduation_year", 1993i64).build();
        let closed =
            semantic_closure(&e, &o, StageMask::all(), None, 2003, &i, &ClosureLimits::default());
        let pe = i.get("professional_experience").unwrap();
        assert_eq!(closed.event.get(pe), Some(&Value::Int(10)));
        assert_eq!(closed.mappings_fired, vec!["experience".to_owned()]);
        let info = closed.info.last().unwrap();
        assert!(info.via_mapping);
        assert_eq!(info.distance, 0);
    }

    #[test]
    fn hierarchy_and_mapping_interleave() {
        // Mapping guard requires the *general* term; only reachable after
        // the hierarchy stage generalizes the event's specialized value.
        let mut i = Interner::new();
        let mut o = Ontology::new("t");
        let lang = i.intern("language");
        let java = i.intern("java");
        o.taxonomy.add_isa(java, lang, &i).unwrap();
        let skill = i.intern("skill");
        let label = i.intern("label");
        let coder = i.intern("coder");
        o.mappings
            .register(MappingFunction::new(
                "coder_label",
                vec![PatternItem {
                    attr: skill,
                    guard: Some(stopss_ontology::Guard {
                        op: Operator::Eq,
                        value: Value::Sym(lang),
                    }),
                }],
                vec![Production { attr: label, expr: Expr::Const(Value::Sym(coder)) }],
            ))
            .unwrap();

        let e = EventBuilder::new(&mut i).term("skill", "java").build();
        let closed =
            semantic_closure(&e, &o, StageMask::all(), None, 0, &i, &ClosureLimits::default());
        assert_eq!(closed.event.get(label), Some(&Value::Sym(coder)));
        assert!(closed.rounds >= 2, "needs a hierarchy round before the mapping fires");

        // Without the hierarchy stage the mapping must not fire.
        let without = semantic_closure(
            &e,
            &o,
            StageMask::SYNONYM.with(StageMask::MAPPING),
            None,
            0,
            &i,
            &ClosureLimits::default(),
        );
        assert_eq!(without.event.get(label), None);
    }

    /// A chain of functions `c0 → c1 → … → c10`: each round unlocks the
    /// next link, so deep chains exercise the fixpoint bounds.
    fn chain_ontology(i: &mut Interner, links: usize) -> Ontology {
        let mut o = Ontology::new("chain");
        for k in 0..links {
            let from = i.intern(&format!("c{k}"));
            let to = i.intern(&format!("c{}", k + 1));
            o.mappings
                .register(MappingFunction::new(
                    format!("step{k}"),
                    vec![PatternItem { attr: from, guard: None }],
                    vec![Production {
                        attr: to,
                        expr: Expr::add(Expr::Attr(from), Expr::Const(Value::Int(1))),
                    }],
                ))
                .unwrap();
        }
        o
    }

    #[test]
    fn pair_cap_truncates_wide_derivations() {
        let mut i = Interner::new();
        let o = chain_ontology(&mut i, 10);
        let e = EventBuilder::new(&mut i).pair("c0", 0i64).build();
        let limits = ClosureLimits { max_pairs: 5, max_rounds: 16 };
        let closed = semantic_closure(&e, &o, StageMask::all(), None, 0, &i, &limits);
        assert!(closed.truncated);
        assert!(closed.event.len() <= 5);
    }

    #[test]
    fn round_cap_truncates_deep_chains() {
        let mut i = Interner::new();
        let o = chain_ontology(&mut i, 10);
        let e = EventBuilder::new(&mut i).pair("c0", 0i64).build();
        let limits = ClosureLimits { max_pairs: 10_000, max_rounds: 3 };
        let closed = semantic_closure(&e, &o, StageMask::all(), None, 0, &i, &limits);
        assert!(closed.truncated);
        assert_eq!(closed.rounds, 3);
        // Exactly one link per round.
        assert_eq!(closed.event.len(), 4);
        // Generous bounds let the 10-link chain complete (10 growth rounds
        // plus one fixpoint-detection round).
        let generous = ClosureLimits { max_pairs: 512, max_rounds: 12 };
        let full = semantic_closure(&e, &o, StageMask::all(), None, 0, &i, &generous);
        assert!(!full.truncated);
        assert_eq!(full.event.len(), 11);
        assert_eq!(full.mappings_fired.len(), 10);
    }

    #[test]
    fn pair_distance_is_minimal_over_derivations() {
        // Both `near` and `far` generalize to `top`, at distances 1 and 2.
        // The closure visits `far` first, so `top` is initially recorded at
        // distance 2 — the later distance-1 derivation must win.
        let mut i = Interner::new();
        let mut o = Ontology::new("t");
        let far = i.intern("far");
        let mid = i.intern("mid");
        let near = i.intern("near");
        let top = i.intern("top");
        o.taxonomy.add_isa(far, mid, &i).unwrap();
        o.taxonomy.add_isa(mid, top, &i).unwrap();
        o.taxonomy.add_isa(near, top, &i).unwrap();
        let e = EventBuilder::new(&mut i).term("x", "far").term("x", "near").build();
        let closed = semantic_closure(
            &e,
            &o,
            StageMask::SYNONYM.with(StageMask::HIERARCHY),
            None,
            0,
            &i,
            &ClosureLimits::default(),
        );
        let x = i.get("x").unwrap();
        let idx = closed
            .event
            .pairs()
            .iter()
            .position(|&(a, v)| a == x && v == Value::Sym(top))
            .expect("top must be derived");
        assert_eq!(closed.info[idx].distance, 1, "minimum over both derivation paths");
        // Consistency: the distance-1 bounded closure must already carry it.
        let bounded = semantic_closure(
            &e,
            &o,
            StageMask::SYNONYM.with(StageMask::HIERARCHY),
            Some(1),
            0,
            &i,
            &ClosureLimits::default(),
        );
        assert!(bounded.event.values_for(x).any(|v| *v == Value::Sym(top)));
    }

    #[test]
    fn syntactic_mask_is_identity() {
        let mut i = Interner::new();
        let o = jobs_ontology(&mut i);
        let e = EventBuilder::new(&mut i).term("school", "toronto").build();
        let closed = semantic_closure(
            &e,
            &o,
            StageMask::syntactic(),
            None,
            2003,
            &i,
            &ClosureLimits::default(),
        );
        assert_eq!(closed.event, e);
        assert_eq!(closed.derived_pairs(), 0);
    }

    #[test]
    fn subscription_rewrite_keeps_string_patterns() {
        let mut i = Interner::new();
        let o = jobs_ontology(&mut i);
        let sub = stopss_types::SubscriptionBuilder::new(&mut i)
            .term_eq("school", "toronto")
            .term("title", Operator::Contains, "school")
            .build(stopss_types::SubId(1));
        let resolved = synonym_resolve_subscription(&sub, &o);
        assert!(matches!(resolved, Cow::Owned(_)), "a term resolved, so a rewrite is needed");
        let university = i.get("university").unwrap();
        assert_eq!(resolved.predicates()[0].attr, university, "Eq attr resolved");
        // The Contains pattern "school" must stay untouched even though the
        // term has a synonym root.
        let school = i.get("school").unwrap();
        assert_eq!(resolved.predicates()[1].value, Value::Sym(school));
    }

    #[test]
    fn subscription_without_synonyms_resolves_borrowed() {
        let mut i = Interner::new();
        let o = jobs_ontology(&mut i);
        // No attribute or Eq-value of this subscription has a synonym root;
        // `school` appears only as a Contains fragment, which is exempt.
        let sub = stopss_types::SubscriptionBuilder::new(&mut i)
            .term_eq("credential", "phd")
            .term("title", Operator::Contains, "school")
            .build(stopss_types::SubId(7));
        let resolved = synonym_resolve_subscription(&sub, &o);
        assert!(matches!(resolved, Cow::Borrowed(_)), "no mapping applies: no clone");
        assert_eq!(*resolved, sub);
    }
}
