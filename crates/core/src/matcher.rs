//! The S-ToPSS matcher: semantic stages wrapped around a syntactic engine.
//!
//! [`SToPSS`] is the system of Figure 1. Subscriptions enter through the
//! synonym stage ("root subscription"); publications run the configured
//! strategy (flattened closure, event materialization, or pre-expanded
//! subscriptions) and the resulting candidates are filtered by each
//! subscriber's information-loss tolerance and annotated with provenance.
//!
//! # Epoch-snapshot control plane
//!
//! The matcher is split into an immutable snapshot (`MatcherCore`: the
//! configuration, ontology handle, subscription table, and syntactic
//! engine) behind an atomically swapped `Arc`, plus shared lifetime
//! counters. The publish path resolves one snapshot `Arc` per publication
//! and never takes a write lock; control-plane mutations (`subscribe`,
//! `unsubscribe`, `set_stages`, `reconfigure`, `set_source`) serialize on
//! a control mutex, *fork* the current snapshot off to the side, mutate
//! the fork, and publish it with one pointer swap. In-flight publications
//! finish against the epoch they started under.
//!
//! Two epochs live inside every snapshot, so a reader resolves state and
//! version in a single `Arc`:
//!
//! * `control_epoch` — bumped by **every** control mutation. It is the
//!   linearization token: each mutation returns the epoch it created, and
//!   every [`PublishResult`] carries the epoch it matched under, so an
//!   interleaved run can be replayed as a sequential stream.
//! * `frontend_epoch` — bumped only by mutations that invalidate detached
//!   [`SemanticFrontEnd`] artifacts (`set_stages`, `reconfigure`,
//!   `set_source`). Subscribing does not bump it: the stage-1 warm set is
//!   an optimization and tolerance classes fill lazily during matching.
use stopss_matching::MatchingEngine;
use stopss_ontology::SemanticSource;
use stopss_types::sync::atomic::{AtomicU64, Ordering};
use stopss_types::sync::{Arc, Mutex, RwLock};
use stopss_types::{Event, FxHashMap, Interner, SharedInterner, SubId, Subscription};

use std::borrow::Cow;

use crate::closure::synonym_resolve_subscription;
use crate::config::{Config, Strategy};
use crate::frontend::{
    classify_with_tiers, prepare_event, prepare_parts, PreparedEvent, SemanticFrontEnd, TierCache,
};
use crate::oracle::{classify_match, semantic_match};
use crate::provenance::{Match, MatchOrigin};
use crate::strategy::expand_subscription;
use crate::tolerance::Tolerance;

/// Counters accumulated across the matcher's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MatcherStats {
    /// Publications processed.
    pub published: u64,
    /// Derived events fed to the engine (materializing strategy counts
    /// every derived event; the others count one per publication).
    pub derived_events: u64,
    /// Total pairs in closed events (flattened strategies).
    pub closure_pairs: u64,
    /// Publications whose semantic processing hit a resource bound.
    pub truncations: u64,
    /// Per-candidate tolerance verifications performed.
    pub verifications: u64,
    /// Candidates rejected by per-subscription tolerance.
    pub verify_rejections: u64,
    /// Subscriptions whose rewrite expansion was clipped by
    /// `max_rewrites`.
    pub rewrite_truncations: u64,
}

impl MatcherStats {
    /// Adds every counter of `other` into `self`. The sharded matcher
    /// aggregates with this: the shared front-end contributes the
    /// event-side counters exactly once, shards contribute only
    /// subscription-side counters, so a plain sum reproduces the
    /// single-threaded numbers.
    pub fn merge(&mut self, other: &MatcherStats) {
        self.published += other.published;
        self.derived_events += other.derived_events;
        self.closure_pairs += other.closure_pairs;
        self.truncations += other.truncations;
        self.verifications += other.verifications;
        self.verify_rejections += other.verify_rejections;
        self.rewrite_truncations += other.rewrite_truncations;
    }
}

/// The lifetime counters behind relaxed atomics, so the match path can
/// accumulate under `&self` — concurrent publishers on one matcher (or
/// shard workers on the sharded matcher's shared front-end counters) add
/// without any lock. Relaxed ordering suffices: counters are monotone
/// sums with no cross-counter invariant read concurrently; snapshots
/// taken between publications reproduce the single-threaded numbers
/// exactly (atomic adds commute).
///
/// The counters live *outside* the swapped snapshots, shared by every
/// [`MatcherCore`] incarnation via `Arc`, so statistics survive
/// control-plane swaps (and reshards) without a carry step.
#[derive(Debug, Default)]
pub(crate) struct AtomicStats {
    pub(crate) published: AtomicU64,
    pub(crate) derived_events: AtomicU64,
    pub(crate) closure_pairs: AtomicU64,
    pub(crate) truncations: AtomicU64,
    pub(crate) verifications: AtomicU64,
    pub(crate) verify_rejections: AtomicU64,
    pub(crate) rewrite_truncations: AtomicU64,
}

impl AtomicStats {
    /// A plain-value snapshot of every counter.
    pub(crate) fn snapshot(&self) -> MatcherStats {
        // ordering: monotone lifetime counters with no cross-counter
        // invariant read concurrently; a snapshot between publications
        // reproduces the single-threaded numbers exactly.
        MatcherStats {
            published: self.published.load(Ordering::Relaxed),
            derived_events: self.derived_events.load(Ordering::Relaxed),
            closure_pairs: self.closure_pairs.load(Ordering::Relaxed),
            truncations: self.truncations.load(Ordering::Relaxed),
            verifications: self.verifications.load(Ordering::Relaxed),
            verify_rejections: self.verify_rejections.load(Ordering::Relaxed),
            rewrite_truncations: self.rewrite_truncations.load(Ordering::Relaxed),
        }
    }
}

/// Detailed result of one publication.
#[derive(Clone, Debug)]
pub struct PublishResult {
    /// The matched subscriptions with provenance.
    pub matches: Vec<Match>,
    /// Derived events the engine saw for this publication.
    pub derived_events: usize,
    /// Pairs in the closed event (0 for the materializing strategy).
    pub closure_pairs: usize,
    /// True if a resource bound clipped semantic processing.
    pub truncated: bool,
    /// The control epoch of the snapshot this publication matched
    /// against — the linearization token: the publication observed every
    /// control op that returned an epoch `<= epoch` and none after.
    pub epoch: u64,
}

struct SubEntry {
    /// The subscription exactly as the subscriber registered it.
    original: Subscription,
    /// The synonym-resolved (canonical root-term) form, cached at
    /// subscribe time for the verify and provenance fast paths — `None`
    /// when it would equal `original` (synonym stage off, or no term of
    /// the subscription has a synonym mapping).
    canonical: Option<Subscription>,
    /// The tolerance the subscriber asked for (re-clamped on rebuild).
    requested: Tolerance,
    /// `requested` clamped to the current system configuration.
    effective: Tolerance,
    /// Engine subscriptions this user subscription expanded to.
    engine_ids: Vec<SubId>,
    /// True if candidates must be re-verified against `effective`.
    needs_verify: bool,
}

impl SubEntry {
    /// The synonym-resolved form (aliases `original` when resolution is
    /// the identity).
    fn canonical(&self) -> &Subscription {
        self.canonical.as_ref().unwrap_or(&self.original)
    }

    /// The subscription form the verify oracle would match with under
    /// this entry's effective tolerance.
    fn verify_sub(&self) -> &Subscription {
        if self.effective.stages.synonym() {
            self.canonical()
        } else {
            &self.original
        }
    }
}

/// Per-publication candidate scratch, owned by the matcher so the hot
/// path allocates once per matcher lifetime rather than once per publish.
#[derive(Default)]
struct MatchScratch {
    /// One engine's matches for one derived event.
    engine_out: Vec<SubId>,
    /// Engine subscription ids matched across all derived events.
    candidates: Vec<SubId>,
    /// Deduplicated user subscription ids.
    users: Vec<SubId>,
}

/// The per-publication mutable state of the match path: the syntactic
/// engine (its trait allows interior scratch, so `match_event` takes
/// `&mut self`) and the candidate scratch vectors. Bundled behind one
/// `Mutex` so [`MatcherCore::match_prepared_inner`] can run under `&self`
/// — the matching stage locks once per artifact, and since shards
/// partition subscriptions the lock is uncontended in the sharded
/// fan-out. This is the *data-plane* mutex; control-plane mutations never
/// touch it except to fork the engine.
struct MatchState {
    engine: Box<dyn MatchingEngine>,
    scratch: MatchScratch,
}

/// One immutable incarnation of the matcher: configuration, ontology
/// handle, subscription table, engine, and the two epochs. Snapshots are
/// never mutated after publication — control ops [`MatcherCore::fork`] a
/// copy, mutate it exclusively, and swap it in. Readers that hold an
/// `Arc<MatcherCore>` observe a frozen, internally consistent matcher.
pub(crate) struct MatcherCore {
    pub(crate) config: Config,
    pub(crate) source: Arc<dyn SemanticSource>,
    interner: SharedInterner,
    state: Mutex<MatchState>,
    subs: FxHashMap<SubId, Arc<SubEntry>>,
    engine_to_user: FxHashMap<SubId, SubId>,
    next_engine_id: u64,
    stats: Arc<AtomicStats>,
    /// Distinct [`Tolerance::verify_class`] values among the registered
    /// subscriptions that need per-candidate verification, refcounted so
    /// `frontend()` can hand the detached stage-1 pass the exact class set
    /// to warm (see [`SemanticFrontEnd`]).
    verify_classes: FxHashMap<Tolerance, usize>,
    /// Bumped by every control mutation (linearization token).
    pub(crate) control_epoch: u64,
    /// Bumped by mutations that invalidate detached front-end artifacts.
    pub(crate) frontend_epoch: u64,
}

impl MatcherCore {
    pub(crate) fn new(
        config: Config,
        source: Arc<dyn SemanticSource>,
        interner: SharedInterner,
        stats: Arc<AtomicStats>,
    ) -> Self {
        MatcherCore {
            state: Mutex::new(MatchState {
                engine: config.engine.build(),
                scratch: MatchScratch::default(),
            }),
            config,
            source,
            interner,
            subs: FxHashMap::default(),
            engine_to_user: FxHashMap::default(),
            next_engine_id: 1,
            stats,
            verify_classes: FxHashMap::default(),
            control_epoch: 0,
            frontend_epoch: 0,
        }
    }

    /// Copy-on-write step of a control mutation: clone every index (the
    /// engine via [`MatchingEngine::boxed_clone`], subscription entries by
    /// `Arc`) into a free-standing core the caller may mutate exclusively
    /// before swapping it in. The fork shares the lifetime counters with
    /// its parent, and starts with `control_epoch` already bumped.
    pub(crate) fn fork(&self) -> MatcherCore {
        MatcherCore {
            state: Mutex::new(MatchState {
                engine: self.state.lock().engine.boxed_clone(),
                scratch: MatchScratch::default(),
            }),
            config: self.config,
            source: self.source.clone(),
            interner: self.interner.clone(),
            subs: self.subs.clone(),
            engine_to_user: self.engine_to_user.clone(),
            next_engine_id: self.next_engine_id,
            stats: self.stats.clone(),
            verify_classes: self.verify_classes.clone(),
            control_epoch: self.control_epoch + 1,
            frontend_epoch: self.frontend_epoch,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.subs.len()
    }

    pub(crate) fn contains(&self, id: SubId) -> bool {
        self.subs.contains_key(&id)
    }

    pub(crate) fn subscription(&self, id: SubId) -> Option<&Subscription> {
        self.subs.get(&id).map(|e| &e.original)
    }

    pub(crate) fn tolerance(&self, id: SubId) -> Option<Tolerance> {
        self.subs.get(&id).map(|e| e.effective)
    }

    pub(crate) fn requested_tolerance(&self, id: SubId) -> Option<Tolerance> {
        self.subs.get(&id).map(|e| e.requested)
    }

    pub(crate) fn subscriptions_with_tolerances(&self) -> Vec<(Subscription, Tolerance)> {
        let mut out: Vec<(Subscription, Tolerance)> =
            self.subs.values().map(|e| (e.original.clone(), e.requested)).collect();
        out.sort_unstable_by_key(|(sub, _)| sub.id());
        out
    }

    pub(crate) fn verify_classes(&self) -> Vec<Tolerance> {
        self.verify_classes.keys().copied().collect()
    }

    /// Appends this core's verification classes to `out`, skipping ones
    /// already present — lets the sharded matcher build the cross-shard
    /// union with a single allocation per snapshot (class sets are tiny,
    /// so the linear dedup beats hashing).
    pub(crate) fn verify_classes_into(&self, out: &mut Vec<Tolerance>) {
        for class in self.verify_classes.keys() {
            if !out.contains(class) {
                out.push(*class);
            }
        }
    }

    pub(crate) fn subscribe(&mut self, sub: Subscription) {
        self.subscribe_with_tolerance(sub, self.config.system_tolerance());
    }

    pub(crate) fn subscribe_with_tolerance(&mut self, sub: Subscription, tolerance: Tolerance) {
        self.remove_entry(sub.id());
        let entry = self.build_entry(sub, tolerance);
        self.track_verify_class(&entry);
        self.subs.insert(entry.original.id(), Arc::new(entry));
    }

    /// Refcounts the entry's verification class (see
    /// [`SToPSS::verify_classes`]).
    fn track_verify_class(&mut self, entry: &SubEntry) {
        if entry.needs_verify {
            *self.verify_classes.entry(entry.effective.verify_class()).or_insert(0) += 1;
        }
    }

    fn build_entry(&mut self, sub: Subscription, requested: Tolerance) -> SubEntry {
        let system = self.config.system_tolerance();
        let effective = requested.clamp_to(&system);
        let needs_verify = effective != system;

        // Engine subscriptions live in canonical (root-term) space whenever
        // the system runs the synonym stage. The resolved form is kept on
        // the entry so the verify/provenance fast paths never re-resolve
        // per candidate; `Cow::Borrowed` means resolution was the identity
        // and `original` can serve both roles.
        let canonical: Option<Subscription> = if self.config.stages.synonym() {
            match synonym_resolve_subscription(&sub, self.source.as_ref()) {
                Cow::Borrowed(_) => None,
                Cow::Owned(resolved) => Some(resolved),
            }
        } else {
            None
        };
        let engine_sub = canonical.as_ref().unwrap_or(&sub);

        let mut engine_ids = Vec::new();
        match self.config.strategy {
            Strategy::MaterializeEvents | Strategy::GeneralizedEvent => {
                let engine_id = self.alloc_engine_id();
                self.state.get_mut().engine.insert(engine_sub.with_id(engine_id));
                self.engine_to_user.insert(engine_id, sub.id());
                engine_ids.push(engine_id);
            }
            Strategy::SubscriptionRewrite => {
                let use_hierarchy = self.config.stages.hierarchy() && effective.stages.hierarchy();
                let expansion = expand_subscription(
                    engine_sub,
                    self.source.as_ref(),
                    use_hierarchy,
                    effective.max_distance,
                    self.config.limits.max_rewrites,
                );
                if expansion.truncated {
                    // ordering: monotone counter; no reader pairs it
                    // with other state.
                    self.stats.rewrite_truncations.fetch_add(1, Ordering::Relaxed);
                }
                for combo in expansion.combos {
                    let engine_id = self.alloc_engine_id();
                    self.state.get_mut().engine.insert(Subscription::new(engine_id, combo));
                    self.engine_to_user.insert(engine_id, sub.id());
                    engine_ids.push(engine_id);
                }
            }
        }
        SubEntry { original: sub, canonical, requested, effective, engine_ids, needs_verify }
    }

    fn alloc_engine_id(&mut self) -> SubId {
        let id = SubId(self.next_engine_id);
        self.next_engine_id += 1;
        id
    }

    /// Removes a subscription; returns whether it existed.
    pub(crate) fn remove_entry(&mut self, id: SubId) -> bool {
        let Some(entry) = self.subs.remove(&id) else {
            return false;
        };
        if entry.needs_verify {
            let class = entry.effective.verify_class();
            if let Some(count) = self.verify_classes.get_mut(&class) {
                *count -= 1;
                if *count == 0 {
                    self.verify_classes.remove(&class);
                }
            }
        }
        for engine_id in &entry.engine_ids {
            self.state.get_mut().engine.remove(*engine_id);
            self.engine_to_user.remove(engine_id);
        }
        true
    }

    pub(crate) fn set_stages(&mut self, stages: crate::tolerance::StageMask) {
        self.config.stages = stages;
        self.frontend_epoch += 1;
        self.rebuild();
    }

    pub(crate) fn reconfigure(&mut self, config: Config) {
        self.config = config;
        self.frontend_epoch += 1;
        self.state.get_mut().engine = self.config.engine.build();
        self.engine_to_user.clear();
        self.rebuild_entries();
    }

    /// Swaps the semantic knowledge source (live ontology evolution) and
    /// rebuilds every engine subscription: canonical forms and rewrite
    /// expansions depend on the ontology.
    pub(crate) fn set_source(&mut self, source: Arc<dyn SemanticSource>) {
        self.source = source;
        self.frontend_epoch += 1;
        self.rebuild();
    }

    fn rebuild(&mut self) {
        self.state.get_mut().engine.clear();
        self.engine_to_user.clear();
        self.rebuild_entries();
    }

    fn rebuild_entries(&mut self) {
        let old: Vec<(Subscription, Tolerance)> =
            self.subs.drain().map(|(_, e)| (e.original.clone(), e.requested)).collect();
        // Verification classes are recomputed from scratch: effective
        // tolerances (and therefore `needs_verify`) depend on the new
        // system configuration.
        self.verify_classes.clear();
        for (sub, requested) in old {
            let entry = self.build_entry(sub, requested);
            self.track_verify_class(&entry);
            self.subs.insert(entry.original.id(), Arc::new(entry));
        }
    }

    /// A detachable front-end handle for this snapshot, tagged with its
    /// `frontend_epoch` so artifacts it prepares can later be checked for
    /// staleness.
    pub(crate) fn frontend(&self) -> SemanticFrontEnd {
        SemanticFrontEnd::new(self.config, self.source.clone(), self.interner.clone())
            .with_verify_classes(self.verify_classes())
            .with_epoch(self.frontend_epoch)
    }

    pub(crate) fn publish_inner(&self, event_raw: &Event, interner: &Interner) -> PublishResult {
        // ordering: monotone stats counters (here and below); atomic adds
        // commute and no reader couples them to other memory.
        self.stats.published.fetch_add(1, Ordering::Relaxed);
        // `prepare_parts` (not `prepare_event`) so the inline path keeps
        // borrowing the caller's event instead of cloning it into a
        // detached artifact; the tier cache is a fresh per-publication
        // local, filled lazily only if candidates need it.
        let parts = prepare_parts(event_raw, self.source.as_ref(), &self.config, interner);
        if parts.truncated {
            // ordering: monotone stats counters, as above.
            self.stats.truncations.fetch_add(1, Ordering::Relaxed);
        }
        // ordering: monotone stats counters, as above.
        self.stats.derived_events.fetch_add(parts.derived_events as u64, Ordering::Relaxed);
        self.stats.closure_pairs.fetch_add(parts.closure_pairs as u64, Ordering::Relaxed);
        let tiers = TierCache::new();
        self.match_inner(
            &parts.engine_events,
            event_raw,
            (parts.derived_events, parts.closure_pairs, parts.truncated),
            &tiers,
            interner,
        )
    }

    /// Accounts the event-side counters a prepared artifact carries, then
    /// matches it.
    pub(crate) fn publish_prepared(&self, prepared: &PreparedEvent) -> PublishResult {
        // ordering: monotone stats counters; atomic adds commute and no
        // reader couples them to other memory.
        self.stats.published.fetch_add(1, Ordering::Relaxed);
        if prepared.truncated {
            // ordering: monotone stats counters, as above.
            self.stats.truncations.fetch_add(1, Ordering::Relaxed);
        }
        // ordering: monotone stats counters, as above.
        self.stats.derived_events.fetch_add(prepared.derived_events as u64, Ordering::Relaxed);
        self.stats.closure_pairs.fetch_add(prepared.closure_pairs as u64, Ordering::Relaxed);
        self.match_prepared(prepared)
    }

    pub(crate) fn match_prepared(&self, prepared: &PreparedEvent) -> PublishResult {
        let interner = self.interner.clone();
        interner.with(|i| self.match_prepared_inner(prepared, i))
    }

    fn match_prepared_inner(&self, prepared: &PreparedEvent, interner: &Interner) -> PublishResult {
        self.match_inner(
            &prepared.engine_events,
            &prepared.raw,
            (prepared.derived_events, prepared.closure_pairs, prepared.truncated),
            &prepared.tiers,
            interner,
        )
    }

    /// The subscription-side half shared by every publish entry point:
    /// engine matching over the precomputed `engine_events`, tolerance
    /// verification and provenance against the raw event, with the
    /// event-side counters passed through into the result.
    ///
    /// Per-candidate semantic work is served from `tiers` — the
    /// per-publication closure cache shared by every shard matching this
    /// artifact — unless [`Config::tier_cache`] selects the per-candidate
    /// oracle path (byte-identical results either way).
    fn match_inner(
        &self,
        engine_events: &[Event],
        event_raw: &Event,
        (derived_events, closure_pairs, truncated): (usize, usize, bool),
        tiers: &TierCache,
        interner: &Interner,
    ) -> PublishResult {
        let mut result = PublishResult {
            matches: Vec::new(),
            derived_events,
            closure_pairs,
            truncated,
            epoch: self.control_epoch,
        };
        // One lock per publication: engine and scratch are used together
        // for the whole matching pass.
        let mut state = self.state.lock();
        let state = &mut *state;
        state.scratch.candidates.clear();
        for event in engine_events {
            state.scratch.engine_out.clear();
            state.engine.match_event(event, interner, &mut state.scratch.engine_out);
            state.scratch.candidates.extend_from_slice(&state.scratch.engine_out);
        }

        // Engine ids → user ids, deduplicated (rewrite fans out one user
        // subscription; materialization feeds many derived events).
        state.scratch.users.clear();
        state.scratch.users.extend(
            state.scratch.candidates.iter().filter_map(|eid| self.engine_to_user.get(eid).copied()),
        );
        state.scratch.users.sort_unstable();
        state.scratch.users.dedup();

        for &user_id in &state.scratch.users {
            let entry =
                self.subs.get(&user_id).expect("invariant: engine ids map to live subscriptions");
            if entry.needs_verify {
                // ordering: monotone stats counter; no reader pairs it
                // with other state.
                self.stats.verifications.fetch_add(1, Ordering::Relaxed);
                let ok = if self.config.tier_cache {
                    // One closure per distinct tolerance class per
                    // publication, then a plain conjunctive match.
                    let class = tiers.tolerance_class(
                        &entry.effective,
                        event_raw,
                        self.source.as_ref(),
                        self.config.now_year,
                        interner,
                        &self.config.limits.closure,
                    );
                    entry.verify_sub().matches(&class.event, interner)
                } else {
                    semantic_match(
                        &entry.original,
                        event_raw,
                        self.source.as_ref(),
                        &entry.effective,
                        self.config.now_year,
                        interner,
                        &self.config.limits.closure,
                    )
                };
                if !ok {
                    // ordering: monotone stats counter; no reader pairs
                    // it with other state.
                    self.stats.verify_rejections.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            }
            let origin = if !self.config.track_provenance {
                MatchOrigin::Unclassified
            } else if self.config.tier_cache {
                classify_with_tiers(
                    &entry.original,
                    entry.canonical(),
                    event_raw,
                    tiers,
                    self.source.as_ref(),
                    self.config.stages,
                    self.config.now_year,
                    interner,
                    &self.config.limits.closure,
                )
            } else {
                classify_match(
                    &entry.original,
                    event_raw,
                    self.source.as_ref(),
                    self.config.stages,
                    self.config.now_year,
                    interner,
                    &self.config.limits.closure,
                )
            };
            result.matches.push(Match { sub: user_id, origin });
        }
        result
    }
}

/// The semantic publish/subscribe matcher.
///
/// The whole publish path ([`SToPSS::publish`], [`SToPSS::match_prepared`],
/// …) takes `&self` and never blocks on control-plane mutations: each
/// publication resolves one immutable snapshot (`MatcherCore`) and
/// matches against it. Control ops (`subscribe`, `unsubscribe`,
/// `set_stages`, `reconfigure`, `set_source`) also take `&self`: they
/// serialize among themselves on a control mutex, build the next snapshot
/// off to the side, and swap it in atomically — publishers racing a
/// mutation finish against whichever epoch they resolved. Every control
/// op returns the `control_epoch` it created (see [`PublishResult::epoch`]
/// for the read side of the linearization token).
pub struct SToPSS {
    interner: SharedInterner,
    stats: Arc<AtomicStats>,
    /// The current snapshot. The lock is held only long enough to clone
    /// (readers) or store (the control plane) the `Arc` — never across
    /// matching or snapshot construction.
    snapshot: RwLock<Arc<MatcherCore>>,
    /// Serializes control-plane mutations; the publish path never touches
    /// it.
    control: Mutex<()>,
}

impl SToPSS {
    /// Creates a matcher over `source` using `interner` for all terms.
    pub fn new(config: Config, source: Arc<dyn SemanticSource>, interner: SharedInterner) -> Self {
        let stats = Arc::new(AtomicStats::default());
        let core = MatcherCore::new(config, source, interner.clone(), stats.clone());
        SToPSS { interner, stats, snapshot: RwLock::new(Arc::new(core)), control: Mutex::new(()) }
    }

    /// Resolves the current snapshot (one brief read lock, one `Arc`
    /// clone). The returned core is immutable and internally consistent.
    fn resolve(&self) -> Arc<MatcherCore> {
        self.snapshot.read().clone()
    }

    /// Runs one control mutation: serialize, fork the current snapshot,
    /// mutate the fork, swap. Returns the new control epoch.
    fn mutate(&self, f: impl FnOnce(&mut MatcherCore)) -> u64 {
        let _control = self.control.lock();
        let mut next = self.resolve().fork();
        f(&mut next);
        let epoch = next.control_epoch;
        *self.snapshot.write() = Arc::new(next);
        epoch
    }

    /// The interner shared with publishers/subscribers.
    pub fn interner(&self) -> &SharedInterner {
        &self.interner
    }

    /// The active configuration (of the current snapshot).
    pub fn config(&self) -> Config {
        self.resolve().config
    }

    /// The semantic knowledge source (of the current snapshot).
    pub fn source(&self) -> Arc<dyn SemanticSource> {
        self.resolve().source.clone()
    }

    /// Lifetime statistics (a snapshot of the atomic counters).
    pub fn stats(&self) -> MatcherStats {
        self.stats.snapshot()
    }

    /// The control epoch of the current snapshot (bumped by every control
    /// mutation).
    pub fn control_epoch(&self) -> u64 {
        self.resolve().control_epoch
    }

    /// The front-end epoch of the current snapshot (bumped by mutations
    /// that invalidate detached [`SemanticFrontEnd`] artifacts:
    /// `set_stages`, `reconfigure`, `set_source`).
    pub fn frontend_epoch(&self) -> u64 {
        self.resolve().frontend_epoch
    }

    /// The distinct verification classes ([`Tolerance::verify_class`])
    /// among registered subscriptions whose effective tolerance differs
    /// from the system-wide one. Snapshot at subscribe time; the detached
    /// front-end warms exactly these classes in stage 1 so the first
    /// publication after a subscribe does not pay the class closure under
    /// the shard fan-out (or the broker's matcher lock).
    pub fn verify_classes(&self) -> Vec<Tolerance> {
        self.resolve().verify_classes()
    }

    /// Number of user subscriptions.
    pub fn len(&self) -> usize {
        self.resolve().len()
    }

    /// True if no subscriptions are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The original subscription registered under `id`.
    pub fn subscription(&self, id: SubId) -> Option<Subscription> {
        self.resolve().subscription(id).cloned()
    }

    /// The effective (clamped) tolerance of subscription `id`.
    pub fn tolerance(&self, id: SubId) -> Option<Tolerance> {
        self.resolve().tolerance(id)
    }

    /// The tolerance subscription `id` originally asked for (before
    /// clamping to the system configuration).
    pub fn requested_tolerance(&self, id: SubId) -> Option<Tolerance> {
        self.resolve().requested_tolerance(id)
    }

    /// Clones out every registered subscription with its *requested*
    /// tolerance, sorted by id. Used by the sharded matcher to
    /// redistribute subscriptions when the shard count changes.
    pub fn subscriptions_with_tolerances(&self) -> Vec<(Subscription, Tolerance)> {
        self.resolve().subscriptions_with_tolerances()
    }

    /// Registers a subscription with the system-wide tolerance. Returns
    /// the control epoch the registration created.
    pub fn subscribe(&self, sub: Subscription) -> u64 {
        self.mutate(|core| core.subscribe(sub))
    }

    /// Registers a subscription with a subscriber-specific tolerance
    /// (clamped to the system configuration — a subscriber can opt out of
    /// semantics, never into more than the system allows). Returns the
    /// control epoch the registration created.
    pub fn subscribe_with_tolerance(&self, sub: Subscription, tolerance: Tolerance) -> u64 {
        self.mutate(|core| core.subscribe_with_tolerance(sub, tolerance))
    }

    /// Registers a whole batch of subscriptions (each with an optional
    /// subscriber tolerance) as **one** control mutation: one fork, one
    /// snapshot swap, one epoch bump — the per-subscription cost of the
    /// copy-on-write control plane is paid once per batch instead of once
    /// per subscription. Connection-scale subscribers (the networked
    /// broker's event loop coalesces Subscribe frames per poll turn) would
    /// otherwise pay a full engine clone per subscription, making N
    /// subscriptions O(N²). An empty batch publishes nothing and returns
    /// the current control epoch.
    pub fn subscribe_batch(&self, subs: Vec<(Subscription, Option<Tolerance>)>) -> u64 {
        if subs.is_empty() {
            return self.control_epoch();
        }
        self.mutate(|core| {
            for (sub, tolerance) in subs {
                match tolerance {
                    Some(t) => core.subscribe_with_tolerance(sub, t),
                    None => core.subscribe(sub),
                }
            }
        })
    }

    /// Removes a subscription; returns the control epoch of the removal,
    /// or `None` if no such subscription existed (no snapshot is
    /// published in that case).
    pub fn unsubscribe(&self, id: SubId) -> Option<u64> {
        let _control = self.control.lock();
        let cur = self.resolve();
        if !cur.contains(id) {
            return None;
        }
        let mut next = cur.fork();
        next.remove_entry(id);
        let epoch = next.control_epoch;
        *self.snapshot.write() = Arc::new(next);
        Some(epoch)
    }

    /// Switches the enabled stages (the demo's semantic/syntactic mode
    /// switch) and rebuilds every engine subscription accordingly.
    /// Returns the control epoch of the switch.
    pub fn set_stages(&self, stages: crate::tolerance::StageMask) -> u64 {
        self.mutate(|core| core.set_stages(stages))
    }

    /// Replaces the configuration (engine, strategy, stages, …) and
    /// rebuilds all engine state from the stored original subscriptions.
    /// Returns the control epoch of the swap.
    pub fn reconfigure(&self, config: Config) -> u64 {
        self.mutate(|core| core.reconfigure(config))
    }

    /// Swaps the semantic knowledge source — live ontology evolution: new
    /// synonyms, taxonomy growth, or mapping changes take effect for every
    /// publication that starts after the swap, while in-flight
    /// publications finish against the ontology they resolved. Returns
    /// the control epoch of the swap.
    pub fn set_source(&self, source: Arc<dyn SemanticSource>) -> u64 {
        self.mutate(|core| core.set_source(source))
    }

    /// Publishes an event, returning the matched subscriptions.
    pub fn publish(&self, event: &Event) -> Vec<Match> {
        self.publish_detailed(event).matches
    }

    /// Publishes an event, returning matches plus processing counters.
    /// The result's `epoch` names the snapshot the publication matched
    /// against.
    pub fn publish_detailed(&self, event: &Event) -> PublishResult {
        let core = self.resolve();
        let interner = self.interner.clone();
        interner.with(|i| core.publish_inner(event, i))
    }

    /// Publishes a batch of events sequentially, returning the match set
    /// of each. Mirrors [`crate::ShardedSToPSS::publish_batch`] so callers
    /// can swap matchers without changing call sites. Each event resolves
    /// its own snapshot, so control ops interleave at event granularity.
    pub fn publish_batch(&self, events: &[Event]) -> Vec<Vec<Match>> {
        events.iter().map(|e| self.publish(e)).collect()
    }

    /// A detachable handle on this matcher's event-side semantic machinery
    /// (configuration snapshot + shared ontology/interner + the registered
    /// verification classes to warm), tagged with the snapshot's
    /// `frontend_epoch`. Lets callers run [`SemanticFrontEnd::prepare`]
    /// without borrowing the matcher — the broker prepares whole batches
    /// concurrently with control-plane traffic and checks the tag at match
    /// time (see [`SToPSS::try_publish_prepared_batch`]).
    pub fn frontend(&self) -> SemanticFrontEnd {
        self.resolve().frontend()
    }

    /// Runs the event-side semantic pass for one publication (closure or
    /// event materialization) without touching the engine or any stats.
    pub fn prepare(&self, event: &Event) -> PreparedEvent {
        let core = self.resolve();
        self.interner.with(|i| prepare_event(event, core.source.as_ref(), &core.config, i))
    }

    /// The subscription-side half of a publication: feeds the prepared
    /// artifact's engine events to the syntactic engine, verifies
    /// per-subscription tolerances, and classifies provenance.
    ///
    /// Takes `&self`: the engine + scratch state is locked per artifact
    /// and the counters are atomics, so concurrent shard workers (or the
    /// broker's match stage) can call this without an exclusive borrow.
    /// Only the subscription-side counters (`verifications`,
    /// `verify_rejections`) accumulate here; the event-side counters
    /// belong to whoever ran the front-end pass (see
    /// [`SToPSS::publish_prepared`] and the sharded matcher). The
    /// artifact must have been prepared under this matcher's current
    /// configuration.
    pub fn match_prepared(&self, prepared: &PreparedEvent) -> PublishResult {
        self.resolve().match_prepared(prepared)
    }

    /// Publishes a precomputed artifact: accounts the event-side counters
    /// it carries, then matches. Equivalent to
    /// `publish_detailed(&prepared.raw)` when the artifact came from this
    /// matcher's [`SToPSS::frontend`].
    pub fn publish_prepared(&self, prepared: &PreparedEvent) -> PublishResult {
        self.resolve().publish_prepared(prepared)
    }

    /// Atomic staleness check + match: resolves one snapshot and, if its
    /// `frontend_epoch` still equals `frontend_epoch` (the tag of the
    /// [`SemanticFrontEnd`] that prepared `prepared`), publishes every
    /// artifact against that snapshot. Returns `None` when the front end
    /// is stale — the caller re-prepares from a fresh
    /// [`SToPSS::frontend`]. The check and the match use the *same*
    /// snapshot, so a control op racing this call either happens entirely
    /// before (stale ⇒ `None`) or entirely after (the batch matches the
    /// pre-op snapshot) — never mid-batch.
    pub fn try_publish_prepared_batch(
        &self,
        prepared: &[PreparedEvent],
        frontend_epoch: u64,
    ) -> Option<Vec<PublishResult>> {
        let core = self.resolve();
        if core.frontend_epoch != frontend_epoch {
            return None;
        }
        Some(prepared.iter().map(|p| core.publish_prepared(p)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tolerance::StageMask;
    use stopss_matching::EngineKind;
    use stopss_ontology::{Expr, MappingFunction, Ontology, PatternItem, Production};
    use stopss_types::{EventBuilder, Operator, SubscriptionBuilder};

    /// Builds the paper's world against one plain interner, then shares it.
    struct World {
        interner: SharedInterner,
        source: Arc<Ontology>,
        sub: Subscription,
        event: Event,
        degree_sub: Subscription,
        phd_event: Event,
    }

    fn world() -> World {
        let mut i = Interner::new();
        let mut o = Ontology::new("jobs");
        let university = i.intern("university");
        let school = i.intern("school");
        o.synonyms.add_synonym(university, school, &i).unwrap();
        let degree = i.intern("degree");
        let grad = i.intern("graduate_degree");
        let phd = i.intern("phd");
        o.taxonomy.add_isa(grad, degree, &i).unwrap();
        o.taxonomy.add_isa(phd, grad, &i).unwrap();
        let gy = i.intern("graduation_year");
        let pe = i.intern("professional_experience");
        o.mappings
            .register(MappingFunction::new(
                "experience",
                vec![PatternItem { attr: gy, guard: None }],
                vec![Production { attr: pe, expr: Expr::sub(Expr::Now, Expr::Attr(gy)) }],
            ))
            .unwrap();

        let sub = SubscriptionBuilder::new(&mut i)
            .term_eq("university", "toronto")
            .pred("professional_experience", Operator::Ge, 4i64)
            .build(SubId(100));
        let event = EventBuilder::new(&mut i)
            .term("school", "toronto")
            .pair("graduation_year", 1993i64)
            .build();
        let degree_sub =
            SubscriptionBuilder::new(&mut i).term_eq("credential", "degree").build(SubId(1));
        let phd_event = EventBuilder::new(&mut i).term("credential", "phd").build();

        World {
            interner: SharedInterner::from_interner(i),
            source: Arc::new(o),
            sub,
            event,
            degree_sub,
            phd_event,
        }
    }

    #[test]
    fn paper_flow_matches_under_every_strategy() {
        for strategy in Strategy::ALL {
            for engine in EngineKind::ALL {
                let w = world();
                let config = Config::default().with_strategy(strategy).with_engine(engine);
                let matcher = SToPSS::new(config, w.source, w.interner);
                matcher.subscribe(w.sub);
                let matches = matcher.publish(&w.event);
                assert_eq!(
                    matches.len(),
                    1,
                    "strategy {} engine {} must find the paper's match",
                    strategy.name(),
                    engine.name()
                );
                assert_eq!(matches[0].sub, SubId(100));
                assert_eq!(matches[0].origin, MatchOrigin::Mapping);
            }
        }
    }

    #[test]
    fn syntactic_mode_finds_nothing_for_the_paper_flow() {
        let w = world();
        let matcher = SToPSS::new(Config::syntactic(), w.source, w.interner);
        matcher.subscribe(w.sub);
        assert!(matcher.publish(&w.event).is_empty());
    }

    #[test]
    fn per_subscription_tolerance_filters_matches() {
        let w = world();
        let matcher = SToPSS::new(Config::default(), w.source, w.interner);
        // Same predicates, different tolerances.
        let strict = w.sub.with_id(SubId(200));
        matcher.subscribe(w.sub);
        matcher.subscribe_with_tolerance(strict, Tolerance::syntactic());
        let matches = matcher.publish(&w.event);
        assert_eq!(matches.len(), 1, "the syntactic-tolerance subscriber must not match");
        assert_eq!(matches[0].sub, SubId(100));
        assert!(matcher.stats().verifications >= 1);
        assert!(matcher.stats().verify_rejections >= 1);
    }

    #[test]
    fn subscribe_batch_equals_sequential_subscribes() {
        let w = world();
        let batched = SToPSS::new(Config::default(), w.source.clone(), w.interner.clone());
        let sequential = SToPSS::new(Config::default(), w.source, w.interner);
        let strict = w.sub.with_id(SubId(200));
        sequential.subscribe(w.sub.clone());
        sequential.subscribe_with_tolerance(strict.clone(), Tolerance::syntactic());
        sequential.subscribe(w.degree_sub.clone());
        let before = batched.control_epoch();
        assert_eq!(batched.subscribe_batch(Vec::new()), before, "empty batch must not publish");
        let epoch = batched.subscribe_batch(vec![
            (w.sub, None),
            (strict, Some(Tolerance::syntactic())),
            (w.degree_sub, None),
        ]);
        assert_eq!(epoch, before + 1, "one batch, one control-epoch bump");
        assert_eq!(batched.len(), sequential.len());
        assert_eq!(batched.publish(&w.event), sequential.publish(&w.event));
        assert_eq!(batched.publish(&w.phd_event), sequential.publish(&w.phd_event));
    }

    #[test]
    fn distance_bounded_tolerance() {
        let w = world();
        let matcher = SToPSS::new(Config::default(), w.source, w.interner);
        matcher.subscribe_with_tolerance(w.degree_sub.clone(), Tolerance::bounded(1));
        // phd is 2 levels below degree: outside a distance-1 tolerance.
        assert!(matcher.publish(&w.phd_event).is_empty());
        matcher.subscribe_with_tolerance(w.degree_sub, Tolerance::bounded(2));
        let matches = matcher.publish(&w.phd_event);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].origin, MatchOrigin::Hierarchy { distance: 2 });
    }

    #[test]
    fn unsubscribe_removes_all_engine_state() {
        let w = world();
        let config = Config::default().with_strategy(Strategy::SubscriptionRewrite);
        let matcher = SToPSS::new(config, w.source, w.interner);
        matcher.subscribe(w.degree_sub);
        assert_eq!(matcher.len(), 1);
        assert!(matcher.unsubscribe(SubId(1)).is_some());
        assert!(matcher.unsubscribe(SubId(1)).is_none());
        assert!(matcher.publish(&w.phd_event).is_empty());
        assert!(matcher.is_empty());
    }

    #[test]
    fn mode_switch_rebuilds_subscriptions() {
        let w = world();
        let matcher = SToPSS::new(Config::default(), w.source, w.interner);
        matcher.subscribe(w.sub);
        assert_eq!(matcher.publish(&w.event).len(), 1);
        matcher.set_stages(StageMask::syntactic());
        assert!(matcher.publish(&w.event).is_empty(), "syntactic mode after switch");
        matcher.set_stages(StageMask::all());
        assert_eq!(matcher.publish(&w.event).len(), 1, "semantic mode restored");
    }

    #[test]
    fn reconfigure_switches_engine_and_strategy() {
        let w = world();
        let matcher = SToPSS::new(Config::default(), w.source, w.interner);
        matcher.subscribe(w.sub);
        assert_eq!(matcher.publish(&w.event).len(), 1);
        matcher.reconfigure(
            Config::default()
                .with_engine(EngineKind::Trie)
                .with_strategy(Strategy::MaterializeEvents),
        );
        assert_eq!(matcher.publish(&w.event).len(), 1, "matches survive reconfiguration");
        assert_eq!(matcher.len(), 1);
    }

    #[test]
    fn provenance_can_be_disabled() {
        let w = world();
        let matcher = SToPSS::new(Config::default().with_provenance(false), w.source, w.interner);
        matcher.subscribe(w.sub);
        let matches = matcher.publish(&w.event);
        assert_eq!(matches[0].origin, MatchOrigin::Unclassified);
    }

    #[test]
    fn stats_accumulate() {
        let w = world();
        let matcher = SToPSS::new(Config::default(), w.source, w.interner);
        matcher.subscribe(w.sub);
        for _ in 0..5 {
            matcher.publish(&w.event);
        }
        assert_eq!(matcher.stats().published, 5);
        assert_eq!(matcher.stats().derived_events, 5);
        assert!(matcher.stats().closure_pairs >= 5);
    }

    /// Every control op bumps `control_epoch` by exactly one and returns
    /// the epoch it created; publications report the epoch they resolved.
    #[test]
    fn control_ops_return_consecutive_epochs() {
        let w = world();
        let matcher = SToPSS::new(Config::default(), w.source, w.interner);
        assert_eq!(matcher.control_epoch(), 0);
        let e1 = matcher.subscribe(w.sub.clone());
        assert_eq!(e1, 1);
        let e2 = matcher.subscribe_with_tolerance(w.degree_sub, Tolerance::syntactic());
        assert_eq!(e2, 2);
        let e3 = matcher.unsubscribe(SubId(1)).expect("live id");
        assert_eq!(e3, 3);
        assert!(matcher.unsubscribe(SubId(1)).is_none(), "dead id publishes no epoch");
        assert_eq!(matcher.control_epoch(), 3, "failed unsubscribe leaves the snapshot alone");
        let result = matcher.publish_detailed(&w.event);
        assert_eq!(result.epoch, 3);
        let e4 = matcher.set_stages(StageMask::syntactic());
        assert_eq!(e4, 4);
    }

    /// `frontend_epoch` moves only on front-end-invalidating mutations;
    /// subscribe/unsubscribe leave detached artifacts valid.
    #[test]
    fn frontend_epoch_tracks_invalidating_mutations_only() {
        let w = world();
        let matcher = SToPSS::new(Config::default(), w.source.clone(), w.interner);
        assert_eq!(matcher.frontend_epoch(), 0);
        matcher.subscribe(w.sub.clone());
        matcher.unsubscribe(w.sub.id());
        assert_eq!(matcher.frontend_epoch(), 0, "subscription churn keeps artifacts valid");
        matcher.set_stages(StageMask::syntactic());
        assert_eq!(matcher.frontend_epoch(), 1);
        matcher.reconfigure(Config::default());
        assert_eq!(matcher.frontend_epoch(), 2);
        matcher.set_source(w.source);
        assert_eq!(matcher.frontend_epoch(), 3);
        assert_eq!(matcher.frontend().epoch(), 3, "frontend carries the snapshot's tag");
    }

    /// A stale frontend artifact is refused atomically; a fresh one is
    /// matched.
    #[test]
    fn try_publish_prepared_batch_checks_staleness() {
        let w = world();
        let matcher = SToPSS::new(Config::default(), w.source, w.interner);
        matcher.subscribe(w.sub);
        let frontend = matcher.frontend();
        let prepared = vec![frontend.prepare(&w.event)];
        let results = matcher
            .try_publish_prepared_batch(&prepared, frontend.epoch())
            .expect("fresh artifact matches");
        assert_eq!(results[0].matches.len(), 1);
        matcher.set_stages(StageMask::syntactic());
        assert!(
            matcher.try_publish_prepared_batch(&prepared, frontend.epoch()).is_none(),
            "stale artifact is refused"
        );
    }

    /// Live ontology evolution: a synonym added after subscribe takes
    /// effect via `set_source` without re-registering subscriptions.
    #[test]
    fn set_source_applies_live_ontology_edits() {
        let mut i = Interner::new();
        let o = Ontology::new("jobs");
        let college = i.intern("college");
        let university = i.intern("university");
        let sub = SubscriptionBuilder::new(&mut i).term_eq("university", "toronto").build(SubId(7));
        let event = EventBuilder::new(&mut i).term("college", "toronto").build();
        let interner = SharedInterner::from_interner(i);
        let matcher = SToPSS::new(Config::default(), Arc::new(o.clone()), interner.clone());
        matcher.subscribe(sub);
        assert!(matcher.publish(&event).is_empty(), "no synonym yet");
        let mut evolved = o;
        interner.with(|i| evolved.synonyms.add_synonym(university, college, i)).unwrap();
        matcher.set_source(Arc::new(evolved));
        assert_eq!(matcher.publish(&event).len(), 1, "new synonym is live");
    }

    /// A publisher that resolved its snapshot before a control op finishes
    /// against that snapshot: the op's swap does not block or corrupt the
    /// in-flight match.
    #[test]
    fn in_flight_publication_finishes_against_its_epoch() {
        let w = world();
        let matcher = SToPSS::new(Config::default(), w.source, w.interner);
        matcher.subscribe(w.sub.clone());
        let before = matcher.resolve();
        matcher.set_stages(StageMask::syntactic());
        // The retired snapshot still matches semantically.
        let result = matcher.interner.with(|i| before.publish_inner(&w.event, i));
        assert_eq!(result.matches.len(), 1);
        assert_eq!(result.epoch, 1);
        // The current snapshot is syntactic.
        assert!(matcher.publish(&w.event).is_empty());
    }
}
