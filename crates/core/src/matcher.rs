//! The S-ToPSS matcher: semantic stages wrapped around a syntactic engine.
//!
//! [`SToPSS`] is the system of Figure 1. Subscriptions enter through the
//! synonym stage ("root subscription"); publications run the configured
//! strategy (flattened closure, event materialization, or pre-expanded
//! subscriptions) and the resulting candidates are filtered by each
//! subscriber's information-loss tolerance and annotated with provenance.

use std::sync::Arc;

use stopss_matching::MatchingEngine;
use stopss_ontology::SemanticSource;
use stopss_types::{Event, FxHashMap, FxHashSet, Interner, SharedInterner, SubId, Subscription};

use crate::closure::{semantic_closure, synonym_resolve_subscription};
use crate::config::{Config, Strategy};
use crate::oracle::{classify_match, semantic_match};
use crate::provenance::{Match, MatchOrigin};
use crate::strategy::{expand_subscription, materialize_match};
use crate::tolerance::Tolerance;

/// Counters accumulated across the matcher's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MatcherStats {
    /// Publications processed.
    pub published: u64,
    /// Derived events fed to the engine (materializing strategy counts
    /// every derived event; the others count one per publication).
    pub derived_events: u64,
    /// Total pairs in closed events (flattened strategies).
    pub closure_pairs: u64,
    /// Publications whose semantic processing hit a resource bound.
    pub truncations: u64,
    /// Per-candidate tolerance verifications performed.
    pub verifications: u64,
    /// Candidates rejected by per-subscription tolerance.
    pub verify_rejections: u64,
    /// Subscriptions whose rewrite expansion was clipped by
    /// `max_rewrites`.
    pub rewrite_truncations: u64,
}

/// Detailed result of one publication.
#[derive(Clone, Debug)]
pub struct PublishResult {
    /// The matched subscriptions with provenance.
    pub matches: Vec<Match>,
    /// Derived events the engine saw for this publication.
    pub derived_events: usize,
    /// Pairs in the closed event (0 for the materializing strategy).
    pub closure_pairs: usize,
    /// True if a resource bound clipped semantic processing.
    pub truncated: bool,
}

struct SubEntry {
    /// The subscription exactly as the subscriber registered it.
    original: Subscription,
    /// The tolerance the subscriber asked for (re-clamped on rebuild).
    requested: Tolerance,
    /// `requested` clamped to the current system configuration.
    effective: Tolerance,
    /// Engine subscriptions this user subscription expanded to.
    engine_ids: Vec<SubId>,
    /// True if candidates must be re-verified against `effective`.
    needs_verify: bool,
}

/// The semantic publish/subscribe matcher.
pub struct SToPSS {
    config: Config,
    source: Arc<dyn SemanticSource>,
    interner: SharedInterner,
    engine: Box<dyn MatchingEngine>,
    subs: FxHashMap<SubId, SubEntry>,
    engine_to_user: FxHashMap<SubId, SubId>,
    next_engine_id: u64,
    stats: MatcherStats,
}

impl SToPSS {
    /// Creates a matcher over `source` using `interner` for all terms.
    pub fn new(config: Config, source: Arc<dyn SemanticSource>, interner: SharedInterner) -> Self {
        SToPSS {
            engine: config.engine.build(),
            config,
            source,
            interner,
            subs: FxHashMap::default(),
            engine_to_user: FxHashMap::default(),
            next_engine_id: 1,
            stats: MatcherStats::default(),
        }
    }

    /// The interner shared with publishers/subscribers.
    pub fn interner(&self) -> &SharedInterner {
        &self.interner
    }

    /// The active configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The semantic knowledge source.
    pub fn source(&self) -> &Arc<dyn SemanticSource> {
        &self.source
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> &MatcherStats {
        &self.stats
    }

    /// Number of user subscriptions.
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// True if no subscriptions are registered.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    /// The original subscription registered under `id`.
    pub fn subscription(&self, id: SubId) -> Option<&Subscription> {
        self.subs.get(&id).map(|e| &e.original)
    }

    /// The effective (clamped) tolerance of subscription `id`.
    pub fn tolerance(&self, id: SubId) -> Option<Tolerance> {
        self.subs.get(&id).map(|e| e.effective)
    }

    /// The tolerance subscription `id` originally asked for (before
    /// clamping to the system configuration).
    pub fn requested_tolerance(&self, id: SubId) -> Option<Tolerance> {
        self.subs.get(&id).map(|e| e.requested)
    }

    /// Clones out every registered subscription with its *requested*
    /// tolerance, sorted by id. Used by the sharded matcher to
    /// redistribute subscriptions when the shard count changes.
    pub fn subscriptions_with_tolerances(&self) -> Vec<(Subscription, Tolerance)> {
        let mut out: Vec<(Subscription, Tolerance)> =
            self.subs.values().map(|e| (e.original.clone(), e.requested)).collect();
        out.sort_unstable_by_key(|(sub, _)| sub.id());
        out
    }

    /// Registers a subscription with the system-wide tolerance.
    pub fn subscribe(&mut self, sub: Subscription) {
        self.subscribe_with_tolerance(sub, self.config.system_tolerance());
    }

    /// Registers a subscription with a subscriber-specific tolerance
    /// (clamped to the system configuration — a subscriber can opt out of
    /// semantics, never into more than the system allows).
    pub fn subscribe_with_tolerance(&mut self, sub: Subscription, tolerance: Tolerance) {
        self.unsubscribe(sub.id());
        let entry = self.build_entry(sub, tolerance);
        self.subs.insert(entry.original.id(), entry);
    }

    fn build_entry(&mut self, sub: Subscription, requested: Tolerance) -> SubEntry {
        let system = self.config.system_tolerance();
        let effective = requested.clamp_to(&system);
        let needs_verify = effective != system;

        // Engine subscriptions live in canonical (root-term) space whenever
        // the system runs the synonym stage.
        let canonical = if self.config.stages.synonym() {
            synonym_resolve_subscription(&sub, self.source.as_ref())
        } else {
            sub.clone()
        };

        let mut engine_ids = Vec::new();
        match self.config.strategy {
            Strategy::MaterializeEvents | Strategy::GeneralizedEvent => {
                let engine_id = self.alloc_engine_id();
                self.engine.insert(canonical.with_id(engine_id));
                self.engine_to_user.insert(engine_id, sub.id());
                engine_ids.push(engine_id);
            }
            Strategy::SubscriptionRewrite => {
                let use_hierarchy = self.config.stages.hierarchy() && effective.stages.hierarchy();
                let expansion = expand_subscription(
                    &canonical,
                    self.source.as_ref(),
                    use_hierarchy,
                    effective.max_distance,
                    self.config.limits.max_rewrites,
                );
                if expansion.truncated {
                    self.stats.rewrite_truncations += 1;
                }
                for combo in expansion.combos {
                    let engine_id = self.alloc_engine_id();
                    self.engine.insert(Subscription::new(engine_id, combo));
                    self.engine_to_user.insert(engine_id, sub.id());
                    engine_ids.push(engine_id);
                }
            }
        }
        SubEntry { original: sub, requested, effective, engine_ids, needs_verify }
    }

    fn alloc_engine_id(&mut self) -> SubId {
        let id = SubId(self.next_engine_id);
        self.next_engine_id += 1;
        id
    }

    /// Removes a subscription; returns whether it existed.
    pub fn unsubscribe(&mut self, id: SubId) -> bool {
        let Some(entry) = self.subs.remove(&id) else {
            return false;
        };
        for engine_id in entry.engine_ids {
            self.engine.remove(engine_id);
            self.engine_to_user.remove(&engine_id);
        }
        true
    }

    /// Publishes an event, returning the matched subscriptions.
    pub fn publish(&mut self, event: &Event) -> Vec<Match> {
        self.publish_detailed(event).matches
    }

    /// Publishes an event, returning matches plus processing counters.
    pub fn publish_detailed(&mut self, event: &Event) -> PublishResult {
        let interner = self.interner.clone();
        interner.with(|i| self.publish_inner(event, i))
    }

    /// Publishes a batch of events sequentially, returning the match set
    /// of each. Mirrors [`crate::ShardedSToPSS::publish_batch`] so callers
    /// can swap matchers without changing call sites.
    pub fn publish_batch(&mut self, events: &[Event]) -> Vec<Vec<Match>> {
        events.iter().map(|e| self.publish(e)).collect()
    }

    fn publish_inner(&mut self, event_raw: &Event, interner: &Interner) -> PublishResult {
        self.stats.published += 1;
        let mut result = PublishResult {
            matches: Vec::new(),
            derived_events: 0,
            closure_pairs: 0,
            truncated: false,
        };
        let mut candidate_engine_ids: Vec<SubId> = Vec::new();

        match self.config.strategy {
            Strategy::GeneralizedEvent => {
                let closed = semantic_closure(
                    event_raw,
                    self.source.as_ref(),
                    self.config.stages,
                    self.config.max_distance,
                    self.config.now_year,
                    interner,
                    &self.config.limits.closure,
                );
                result.derived_events = 1;
                result.closure_pairs = closed.event.len();
                result.truncated = closed.truncated;
                self.engine.match_event(&closed.event, interner, &mut candidate_engine_ids);
            }
            Strategy::SubscriptionRewrite => {
                // Hierarchy handled at subscribe time; publications only
                // run the synonym and mapping stages.
                let stages = self.config.stages.without(crate::tolerance::StageMask::HIERARCHY);
                let closed = semantic_closure(
                    event_raw,
                    self.source.as_ref(),
                    stages,
                    self.config.max_distance,
                    self.config.now_year,
                    interner,
                    &self.config.limits.closure,
                );
                result.derived_events = 1;
                result.closure_pairs = closed.event.len();
                result.truncated = closed.truncated;
                self.engine.match_event(&closed.event, interner, &mut candidate_engine_ids);
            }
            Strategy::MaterializeEvents => {
                let mut candidates: FxHashSet<SubId> = FxHashSet::default();
                let outcome = materialize_match(
                    event_raw,
                    self.source.as_ref(),
                    self.config.stages,
                    self.config.max_distance,
                    self.config.now_year,
                    interner,
                    &self.config.limits,
                    self.engine.as_mut(),
                    &mut candidates,
                );
                result.derived_events = outcome.derived_events;
                result.truncated = outcome.truncated;
                candidate_engine_ids.extend(candidates);
            }
        }
        if result.truncated {
            self.stats.truncations += 1;
        }
        self.stats.derived_events += result.derived_events as u64;
        self.stats.closure_pairs += result.closure_pairs as u64;

        // Engine ids → user ids, deduplicated (rewrite fans out; the
        // materializing strategy already deduplicated engine ids).
        let mut user_ids: Vec<SubId> = candidate_engine_ids
            .iter()
            .filter_map(|eid| self.engine_to_user.get(eid).copied())
            .collect();
        user_ids.sort_unstable();
        user_ids.dedup();

        for user_id in user_ids {
            let entry = self.subs.get(&user_id).expect("engine ids map to live subscriptions");
            if entry.needs_verify {
                self.stats.verifications += 1;
                let ok = semantic_match(
                    &entry.original,
                    event_raw,
                    self.source.as_ref(),
                    &entry.effective,
                    self.config.now_year,
                    interner,
                    &self.config.limits.closure,
                );
                if !ok {
                    self.stats.verify_rejections += 1;
                    continue;
                }
            }
            let origin = if self.config.track_provenance {
                classify_match(
                    &entry.original,
                    event_raw,
                    self.source.as_ref(),
                    self.config.stages,
                    self.config.now_year,
                    interner,
                    &self.config.limits.closure,
                )
            } else {
                MatchOrigin::Unclassified
            };
            result.matches.push(Match { sub: user_id, origin });
        }
        result
    }

    /// Switches the enabled stages (the demo's semantic/syntactic mode
    /// switch) and rebuilds every engine subscription accordingly.
    pub fn set_stages(&mut self, stages: crate::tolerance::StageMask) {
        self.config.stages = stages;
        self.rebuild();
    }

    /// Replaces the configuration (engine, strategy, stages, …) and
    /// rebuilds all engine state from the stored original subscriptions.
    pub fn reconfigure(&mut self, config: Config) {
        self.config = config;
        self.engine = self.config.engine.build();
        self.engine_to_user.clear();
        self.rebuild_entries();
    }

    fn rebuild(&mut self) {
        self.engine.clear();
        self.engine_to_user.clear();
        self.rebuild_entries();
    }

    fn rebuild_entries(&mut self) {
        let old: Vec<(Subscription, Tolerance)> =
            self.subs.drain().map(|(_, e)| (e.original, e.requested)).collect();
        for (sub, requested) in old {
            let entry = self.build_entry(sub, requested);
            self.subs.insert(entry.original.id(), entry);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tolerance::StageMask;
    use stopss_matching::EngineKind;
    use stopss_ontology::{Expr, MappingFunction, Ontology, PatternItem, Production};
    use stopss_types::{EventBuilder, Operator, SubscriptionBuilder};

    /// Builds the paper's world against one plain interner, then shares it.
    struct World {
        interner: SharedInterner,
        source: Arc<Ontology>,
        sub: Subscription,
        event: Event,
        degree_sub: Subscription,
        phd_event: Event,
    }

    fn world() -> World {
        let mut i = Interner::new();
        let mut o = Ontology::new("jobs");
        let university = i.intern("university");
        let school = i.intern("school");
        o.synonyms.add_synonym(university, school, &i).unwrap();
        let degree = i.intern("degree");
        let grad = i.intern("graduate_degree");
        let phd = i.intern("phd");
        o.taxonomy.add_isa(grad, degree, &i).unwrap();
        o.taxonomy.add_isa(phd, grad, &i).unwrap();
        let gy = i.intern("graduation_year");
        let pe = i.intern("professional_experience");
        o.mappings
            .register(MappingFunction::new(
                "experience",
                vec![PatternItem { attr: gy, guard: None }],
                vec![Production { attr: pe, expr: Expr::sub(Expr::Now, Expr::Attr(gy)) }],
            ))
            .unwrap();

        let sub = SubscriptionBuilder::new(&mut i)
            .term_eq("university", "toronto")
            .pred("professional_experience", Operator::Ge, 4i64)
            .build(SubId(100));
        let event = EventBuilder::new(&mut i)
            .term("school", "toronto")
            .pair("graduation_year", 1993i64)
            .build();
        let degree_sub =
            SubscriptionBuilder::new(&mut i).term_eq("credential", "degree").build(SubId(1));
        let phd_event = EventBuilder::new(&mut i).term("credential", "phd").build();

        World {
            interner: SharedInterner::from_interner(i),
            source: Arc::new(o),
            sub,
            event,
            degree_sub,
            phd_event,
        }
    }

    #[test]
    fn paper_flow_matches_under_every_strategy() {
        for strategy in Strategy::ALL {
            for engine in EngineKind::ALL {
                let w = world();
                let config = Config::default().with_strategy(strategy).with_engine(engine);
                let mut matcher = SToPSS::new(config, w.source, w.interner);
                matcher.subscribe(w.sub);
                let matches = matcher.publish(&w.event);
                assert_eq!(
                    matches.len(),
                    1,
                    "strategy {} engine {} must find the paper's match",
                    strategy.name(),
                    engine.name()
                );
                assert_eq!(matches[0].sub, SubId(100));
                assert_eq!(matches[0].origin, MatchOrigin::Mapping);
            }
        }
    }

    #[test]
    fn syntactic_mode_finds_nothing_for_the_paper_flow() {
        let w = world();
        let mut matcher = SToPSS::new(Config::syntactic(), w.source, w.interner);
        matcher.subscribe(w.sub);
        assert!(matcher.publish(&w.event).is_empty());
    }

    #[test]
    fn per_subscription_tolerance_filters_matches() {
        let w = world();
        let mut matcher = SToPSS::new(Config::default(), w.source, w.interner);
        // Same predicates, different tolerances.
        let strict = w.sub.with_id(SubId(200));
        matcher.subscribe(w.sub);
        matcher.subscribe_with_tolerance(strict, Tolerance::syntactic());
        let matches = matcher.publish(&w.event);
        assert_eq!(matches.len(), 1, "the syntactic-tolerance subscriber must not match");
        assert_eq!(matches[0].sub, SubId(100));
        assert!(matcher.stats().verifications >= 1);
        assert!(matcher.stats().verify_rejections >= 1);
    }

    #[test]
    fn distance_bounded_tolerance() {
        let w = world();
        let mut matcher = SToPSS::new(Config::default(), w.source, w.interner);
        matcher.subscribe_with_tolerance(w.degree_sub.clone(), Tolerance::bounded(1));
        // phd is 2 levels below degree: outside a distance-1 tolerance.
        assert!(matcher.publish(&w.phd_event).is_empty());
        matcher.subscribe_with_tolerance(w.degree_sub, Tolerance::bounded(2));
        let matches = matcher.publish(&w.phd_event);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].origin, MatchOrigin::Hierarchy { distance: 2 });
    }

    #[test]
    fn unsubscribe_removes_all_engine_state() {
        let w = world();
        let config = Config::default().with_strategy(Strategy::SubscriptionRewrite);
        let mut matcher = SToPSS::new(config, w.source, w.interner);
        matcher.subscribe(w.degree_sub);
        assert_eq!(matcher.len(), 1);
        assert!(matcher.unsubscribe(SubId(1)));
        assert!(!matcher.unsubscribe(SubId(1)));
        assert!(matcher.publish(&w.phd_event).is_empty());
        assert!(matcher.is_empty());
    }

    #[test]
    fn mode_switch_rebuilds_subscriptions() {
        let w = world();
        let mut matcher = SToPSS::new(Config::default(), w.source, w.interner);
        matcher.subscribe(w.sub);
        assert_eq!(matcher.publish(&w.event).len(), 1);
        matcher.set_stages(StageMask::syntactic());
        assert!(matcher.publish(&w.event).is_empty(), "syntactic mode after switch");
        matcher.set_stages(StageMask::all());
        assert_eq!(matcher.publish(&w.event).len(), 1, "semantic mode restored");
    }

    #[test]
    fn reconfigure_switches_engine_and_strategy() {
        let w = world();
        let mut matcher = SToPSS::new(Config::default(), w.source, w.interner);
        matcher.subscribe(w.sub);
        assert_eq!(matcher.publish(&w.event).len(), 1);
        matcher.reconfigure(
            Config::default()
                .with_engine(EngineKind::Trie)
                .with_strategy(Strategy::MaterializeEvents),
        );
        assert_eq!(matcher.publish(&w.event).len(), 1, "matches survive reconfiguration");
        assert_eq!(matcher.len(), 1);
    }

    #[test]
    fn provenance_can_be_disabled() {
        let w = world();
        let mut matcher =
            SToPSS::new(Config::default().with_provenance(false), w.source, w.interner);
        matcher.subscribe(w.sub);
        let matches = matcher.publish(&w.event);
        assert_eq!(matches[0].origin, MatchOrigin::Unclassified);
    }

    #[test]
    fn stats_accumulate() {
        let w = world();
        let mut matcher = SToPSS::new(Config::default(), w.source, w.interner);
        matcher.subscribe(w.sub);
        for _ in 0..5 {
            matcher.publish(&w.event);
        }
        assert_eq!(matcher.stats().published, 5);
        assert_eq!(matcher.stats().derived_events, 5);
        assert!(matcher.stats().closure_pairs >= 5);
    }
}
