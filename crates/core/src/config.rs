//! Matcher configuration.

use stopss_matching::EngineKind;

use crate::closure::ClosureLimits;
use crate::tolerance::{StageMask, Tolerance};

/// How the semantic layer drives the syntactic engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Figure 1 verbatim: the semantic stage materializes derived events
    /// ("new event from concept hierarchy", "new event from mapping
    /// function") and feeds each one to the unmodified engine; the match
    /// set is the union. Derivations append pairs, so the derived events
    /// form a lattice whose maximum is the flattened closure — identical
    /// match set to [`Strategy::GeneralizedEvent`] at fixpoint, but the
    /// exploration is combinatorial (bounded by `max_derived_events`).
    /// The upside the paper emphasizes: the engine is untouched.
    MaterializeEvents,
    /// Flatten every derivable pair into one multi-valued event and match
    /// once. Same match set as materialization at fixpoint (∃-semantics
    /// is monotone in the pair set) at a fraction of the cost; requires
    /// engines to accept multi-valued events.
    GeneralizedEvent,
    /// Move the hierarchy work to subscribe time: expand equality
    /// predicates over taxonomy descendants into several engine
    /// subscriptions. Publications then skip the hierarchy stage.
    /// Exact for synonym+hierarchy semantics; under-approximates chains
    /// where a mapping function's guard requires a *generalized* term
    /// (measured in experiment E8).
    SubscriptionRewrite,
}

impl Strategy {
    /// All strategies, for sweeps.
    pub const ALL: [Strategy; 3] =
        [Strategy::MaterializeEvents, Strategy::GeneralizedEvent, Strategy::SubscriptionRewrite];

    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::MaterializeEvents => "materialize",
            Strategy::GeneralizedEvent => "generalized",
            Strategy::SubscriptionRewrite => "sub-rewrite",
        }
    }
}

/// Resource bounds for semantic processing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Limits {
    /// Bounds on the flattened closure fixpoint.
    pub closure: ClosureLimits,
    /// Maximum derived events per publication (materializing strategy).
    pub max_derived_events: usize,
    /// Maximum engine subscriptions one user subscription may expand to
    /// (subscription-rewrite strategy).
    pub max_rewrites: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits { closure: ClosureLimits::default(), max_derived_events: 256, max_rewrites: 1024 }
    }
}

/// Full matcher configuration.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Which syntactic engine to wrap.
    pub engine: EngineKind,
    /// How the semantic layer drives it.
    pub strategy: Strategy,
    /// System-wide enabled stages (individual subscribers can only opt
    /// *down* from this via their [`Tolerance`]).
    pub stages: StageMask,
    /// System-wide generalization bound.
    pub max_distance: Option<u32>,
    /// The "present date" for mapping expressions. The paper demonstrated
    /// at VLDB 2003, so that is the default.
    pub now_year: i64,
    /// Resource bounds.
    pub limits: Limits,
    /// Classify each match's [`crate::MatchOrigin`] (costs extra oracle
    /// checks per match; disable for throughput benchmarks).
    pub track_provenance: bool,
    /// Serve per-candidate tolerance verification and provenance
    /// classification from the per-publication tier cache carried by
    /// [`crate::PreparedEvent`] (see [`crate::TierCache`]) instead of
    /// re-running the oracle closures for every matched candidate.
    /// Results are byte-identical either way (pinned by
    /// `tests/tier_cache_differential.rs`); the `false` setting keeps the
    /// oracle path selectable for differential tests and the
    /// cached-vs-oracle axis of the `semantic_overhead` bench.
    pub tier_cache: bool,
    /// Number of subscription shards for [`crate::ShardedSToPSS`]
    /// (subscriptions are partitioned by a hash of their [`stopss_types::SubId`];
    /// each shard owns an independent engine). Ignored by the
    /// single-threaded [`crate::SToPSS`]. Values below 1 mean 1.
    pub shards: usize,
    /// Worker threads the sharded matcher's two pipeline stages run on:
    /// the shared semantic front-end chunks large batches across up to
    /// this many workers (further capped by the host's available
    /// parallelism), and shard matching fans out on the same budget.
    /// `0` means auto: one worker per shard for batched publishes, while
    /// single-event publishes stay sequential (a thread spawn costs more
    /// than typical per-event matching). Setting it explicitly forces the
    /// pool even for single events; values above `shards` are clamped.
    ///
    /// The budget is **per stage**: when `publish_batch` pipelines a
    /// multi-chunk batch (budget ≥ 2), stage 1 of chunk k+1 and stage 2
    /// of chunk k overlap, so up to twice this many workers (plus one
    /// preparer thread) can be live at once. A budget of 1 disables the
    /// overlap entirely (barrier behaviour).
    pub parallelism: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            engine: EngineKind::Counting,
            strategy: Strategy::GeneralizedEvent,
            stages: StageMask::all(),
            max_distance: None,
            now_year: 2003,
            limits: Limits::default(),
            track_provenance: true,
            tier_cache: true,
            shards: 1,
            parallelism: 0,
        }
    }
}

impl Config {
    /// Full semantics with defaults.
    pub fn semantic() -> Self {
        Config::default()
    }

    /// The demo's "syntactic mode": plain content-based matching.
    pub fn syntactic() -> Self {
        Config { stages: StageMask::syntactic(), ..Config::default() }
    }

    /// The system-wide tolerance implied by this configuration.
    pub fn system_tolerance(&self) -> Tolerance {
        Tolerance { stages: self.stages, max_distance: self.max_distance }
    }

    /// Returns a copy with a different engine.
    #[must_use]
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Returns a copy with a different strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Returns a copy with different stages.
    #[must_use]
    pub fn with_stages(mut self, stages: StageMask) -> Self {
        self.stages = stages;
        self
    }

    /// Returns a copy with provenance tracking toggled.
    #[must_use]
    pub fn with_provenance(mut self, on: bool) -> Self {
        self.track_provenance = on;
        self
    }

    /// Returns a copy with the tier cache toggled (see
    /// [`Config::tier_cache`]; `false` forces the per-candidate oracle
    /// path).
    #[must_use]
    pub fn with_tier_cache(mut self, on: bool) -> Self {
        self.tier_cache = on;
        self
    }

    /// Returns a copy with a different shard count (see [`Config::shards`]).
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Returns a copy with a different worker count (see
    /// [`Config::parallelism`]).
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The shard count [`crate::ShardedSToPSS`] will actually use.
    pub fn effective_shards(&self) -> usize {
        self.shards.max(1)
    }

    /// The worker count the sharded matcher will actually use: one per
    /// shard when `parallelism` is 0, otherwise clamped to the shard count.
    pub fn effective_parallelism(&self) -> usize {
        let shards = self.effective_shards();
        if self.parallelism == 0 {
            shards
        } else {
            self.parallelism.min(shards)
        }
    }

    /// True if `publish_batch` may overlap its two pipeline stages
    /// (stage 1 of chunk k+1 concurrent with stage 2 of chunk k). Needs
    /// a worker budget of at least 2, and — in auto mode — a host that
    /// can actually run two stages at once: on a single hardware thread
    /// the overlap is pure handoff overhead, so auto falls back to the
    /// barrier there. An explicit `parallelism >= 2` forces the overlap
    /// regardless of the probed hardware (the caller opted in; the
    /// differential suites use this to exercise the pipeline machinery
    /// deterministically on any host).
    pub fn pipeline_overlap(&self) -> bool {
        self.effective_parallelism() >= 2
            && (self.parallelism >= 2
                || std::thread::available_parallelism().map_or(1, |n| n.get()) >= 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_full_semantics() {
        let c = Config::default();
        assert_eq!(c.stages, StageMask::all());
        assert_eq!(c.strategy, Strategy::GeneralizedEvent);
        assert_eq!(c.now_year, 2003);
        assert!(c.track_provenance);
        assert!(c.tier_cache, "the cached fast path is the default");
        assert!(!c.with_tier_cache(false).tier_cache);
    }

    #[test]
    fn syntactic_config_disables_stages() {
        let c = Config::syntactic();
        assert!(c.stages.is_syntactic());
        assert_eq!(c.system_tolerance().stages, StageMask::syntactic());
    }

    #[test]
    fn builder_helpers() {
        let c = Config::default()
            .with_engine(EngineKind::Trie)
            .with_strategy(Strategy::SubscriptionRewrite)
            .with_stages(StageMask::SYNONYM)
            .with_provenance(false);
        assert_eq!(c.engine, EngineKind::Trie);
        assert_eq!(c.strategy, Strategy::SubscriptionRewrite);
        assert_eq!(c.stages, StageMask::SYNONYM);
        assert!(!c.track_provenance);
    }

    #[test]
    fn strategy_names() {
        for s in Strategy::ALL {
            assert!(!s.name().is_empty());
        }
    }

    #[test]
    fn sharding_knobs_resolve() {
        let c = Config::default();
        assert_eq!(c.effective_shards(), 1);
        assert_eq!(c.effective_parallelism(), 1);
        let c = Config::default().with_shards(8);
        assert_eq!(c.effective_shards(), 8);
        assert_eq!(c.effective_parallelism(), 8, "0 workers means one per shard");
        let c = c.with_parallelism(3);
        assert_eq!(c.effective_parallelism(), 3);
        let c = c.with_parallelism(100);
        assert_eq!(c.effective_parallelism(), 8, "workers clamp to shards");
        assert_eq!(Config::default().with_shards(0).effective_shards(), 1);
    }
}
