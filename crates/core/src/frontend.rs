//! The shared event-side semantic front-end.
//!
//! Everything Figure 1 does to a *publication* — synonym canonicalization,
//! the bounded hierarchy/mapping closure, event materialization — depends
//! only on the event, the ontology, and the configuration; never on which
//! subscriptions are registered. The companion paper "I know what you
//! mean" frames exactly this split: semantic enrichment is a
//! per-publication transform, matching is the per-subscription fan-out.
//! This module computes that transform once, into a [`PreparedEvent`]
//! artifact, so concurrent backends ([`crate::ShardedSToPSS`], the
//! broker's batched publish path) hand shards only the engine-match +
//! verify work instead of recomputing the closure per shard.
//!
//! [`SemanticFrontEnd`] is the detachable handle: a snapshot of the
//! configuration plus shared ontology/interner references, cheap to clone
//! out of a matcher so callers (e.g. the broker) can run the event-side
//! pass *outside* the matcher lock.

use std::sync::Arc;

use stopss_ontology::SemanticSource;
use stopss_types::{Event, Interner, SharedInterner};

use crate::closure::{semantic_closure, PairInfo};
use crate::config::{Config, Strategy};
use crate::strategy::materialize_closure;
use crate::tolerance::StageMask;

/// The precomputed event-side semantic pass of one publication: the
/// artifact shards match against, plus the counters the pass produced.
///
/// Equivalent to what [`crate::SToPSS::publish_detailed`] derives
/// internally — computing it once and matching it on N shards is
/// byte-identical to letting every shard recompute it (pinned by
/// `crates/core/tests/frontend_differential.rs`).
#[derive(Clone, Debug)]
pub struct PreparedEvent {
    /// The publication exactly as the publisher wrote it. Tolerance
    /// verification and provenance classification are defined against the
    /// raw event, so it travels with the artifact.
    pub raw: Event,
    /// The events the syntactic engine sees: one flattened closure for
    /// [`Strategy::GeneralizedEvent`] / [`Strategy::SubscriptionRewrite`],
    /// or the materialized derivation lattice (in breadth-first derivation
    /// order) for [`Strategy::MaterializeEvents`].
    pub engine_events: Vec<Event>,
    /// Per-pair derivation provenance of the flattened closure (origin
    /// distance, mapping/hierarchy flags), aligned with
    /// `engine_events[0]`. Empty for the materializing strategy.
    pub info: Vec<PairInfo>,
    /// Derived events fed to the engine (the `derived_events` stat).
    pub derived_events: usize,
    /// Pairs in the closed event (the `closure_pairs` stat; 0 for the
    /// materializing strategy).
    pub closure_pairs: usize,
    /// True if a resource bound clipped the semantic pass.
    pub truncated: bool,
}

/// The engine-facing pieces of the event-side pass, without the owned raw
/// event. The inline single-matcher publish path uses this directly so it
/// can keep borrowing the caller's event; the detachable
/// [`prepare_event`] wraps it into a self-contained [`PreparedEvent`].
pub(crate) struct PreparedParts {
    /// See [`PreparedEvent::engine_events`].
    pub engine_events: Vec<Event>,
    /// See [`PreparedEvent::info`].
    pub info: Vec<PairInfo>,
    /// See [`PreparedEvent::derived_events`].
    pub derived_events: usize,
    /// See [`PreparedEvent::closure_pairs`].
    pub closure_pairs: usize,
    /// See [`PreparedEvent::truncated`].
    pub truncated: bool,
}

pub(crate) fn prepare_parts(
    event: &Event,
    source: &dyn SemanticSource,
    config: &Config,
    interner: &Interner,
) -> PreparedParts {
    match config.strategy {
        Strategy::GeneralizedEvent | Strategy::SubscriptionRewrite => {
            // The rewrite strategy moved hierarchy work to subscribe time;
            // its publications run only the synonym and mapping stages.
            let stages = if config.strategy == Strategy::SubscriptionRewrite {
                config.stages.without(StageMask::HIERARCHY)
            } else {
                config.stages
            };
            let closed = semantic_closure(
                event,
                source,
                stages,
                config.max_distance,
                config.now_year,
                interner,
                &config.limits.closure,
            );
            PreparedParts {
                closure_pairs: closed.event.len(),
                truncated: closed.truncated,
                engine_events: vec![closed.event],
                info: closed.info,
                derived_events: 1,
            }
        }
        Strategy::MaterializeEvents => {
            let materialized = materialize_closure(
                event,
                source,
                config.stages,
                config.max_distance,
                config.now_year,
                interner,
                &config.limits,
            );
            PreparedParts {
                derived_events: materialized.events.len(),
                truncated: materialized.truncated,
                engine_events: materialized.events,
                info: Vec::new(),
                closure_pairs: 0,
            }
        }
    }
}

/// Computes the event-side semantic pass for `event` under `config`.
///
/// This is the single source of truth for publication-side semantics:
/// [`crate::SToPSS::publish_detailed`] runs it per publication, and
/// [`crate::ShardedSToPSS`] runs it once per publication *before* fanning
/// the matching out to shards.
pub fn prepare_event(
    event: &Event,
    source: &dyn SemanticSource,
    config: &Config,
    interner: &Interner,
) -> PreparedEvent {
    let parts = prepare_parts(event, source, config, interner);
    PreparedEvent {
        raw: event.clone(),
        engine_events: parts.engine_events,
        info: parts.info,
        derived_events: parts.derived_events,
        closure_pairs: parts.closure_pairs,
        truncated: parts.truncated,
    }
}

/// A detachable handle on the event-side semantic machinery: the
/// configuration snapshot plus the shared ontology and interner.
///
/// Cloned out of a matcher (see [`crate::SToPSS::frontend`] /
/// [`crate::ShardedSToPSS::frontend`]) so the publication-side pass can
/// run without holding any matcher lock — the broker uses this to prepare
/// whole batches outside its matcher mutex.
#[derive(Clone)]
pub struct SemanticFrontEnd {
    config: Config,
    source: Arc<dyn SemanticSource>,
    interner: SharedInterner,
}

/// Minimum publications per front-end worker before another thread is
/// worth spawning (a scoped spawn costs more than a handful of closures).
const MIN_EVENTS_PER_WORKER: usize = 16;

impl SemanticFrontEnd {
    /// Creates a front-end over `source` with `config`'s semantics.
    pub fn new(config: Config, source: Arc<dyn SemanticSource>, interner: SharedInterner) -> Self {
        SemanticFrontEnd { config, source, interner }
    }

    /// The configuration snapshot this front-end prepares under.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Prepares one publication.
    pub fn prepare(&self, event: &Event) -> PreparedEvent {
        self.interner.with(|i| prepare_event(event, self.source.as_ref(), &self.config, i))
    }

    /// Prepares a batch of publications, in order.
    ///
    /// The per-event passes are independent pure functions, so the batch
    /// is chunked across up to [`Config::effective_parallelism`] scoped
    /// workers (capped by the host's available parallelism and by
    /// [`MIN_EVENTS_PER_WORKER`]); results are position-stable, so the
    /// output is identical to the sequential pass regardless of worker
    /// count.
    pub fn prepare_batch(&self, events: &[Event]) -> Vec<PreparedEvent> {
        let workers = self.batch_workers(events.len());
        if workers <= 1 {
            return self.interner.with(|i| {
                events
                    .iter()
                    .map(|e| prepare_event(e, self.source.as_ref(), &self.config, i))
                    .collect()
            });
        }
        let chunk = events.len().div_ceil(workers);
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = events
                .chunks(chunk)
                .map(|chunk_events| {
                    scope.spawn(move |_| {
                        self.interner.with(|i| {
                            chunk_events
                                .iter()
                                .map(|e| prepare_event(e, self.source.as_ref(), &self.config, i))
                                .collect::<Vec<_>>()
                        })
                    })
                })
                .collect();
            // Joined in spawn order, so event order is preserved.
            handles.into_iter().flat_map(|h| h.join().expect("front-end worker panicked")).collect()
        })
        .expect("front-end scope panicked")
    }

    /// Worker count for a batch of `events` publications: bounded by the
    /// configured parallelism, the hardware, and the batch size.
    fn batch_workers(&self, events: usize) -> usize {
        let configured = self.config.effective_parallelism();
        let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());
        configured.min(hardware).min(events.div_ceil(MIN_EVENTS_PER_WORKER)).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stopss_ontology::Ontology;
    use stopss_types::{EventBuilder, Interner};

    fn world() -> (SharedInterner, Arc<Ontology>, Vec<Event>) {
        let mut i = Interner::new();
        let mut o = Ontology::new("t");
        let degree = i.intern("degree");
        let grad = i.intern("graduate_degree");
        let phd = i.intern("phd");
        o.taxonomy.add_isa(grad, degree, &i).unwrap();
        o.taxonomy.add_isa(phd, grad, &i).unwrap();
        let events = vec![
            EventBuilder::new(&mut i).term("credential", "phd").build(),
            EventBuilder::new(&mut i).term("credential", "degree").build(),
            EventBuilder::new(&mut i).term("credential", "other").build(),
        ];
        (SharedInterner::from_interner(i), Arc::new(o), events)
    }

    #[test]
    fn prepare_flattened_carries_closure_and_provenance() {
        let (interner, source, events) = world();
        let frontend = SemanticFrontEnd::new(Config::default(), source, interner);
        let prepared = frontend.prepare(&events[0]);
        assert_eq!(prepared.raw, events[0]);
        assert_eq!(prepared.engine_events.len(), 1);
        assert_eq!(prepared.derived_events, 1);
        assert_eq!(prepared.closure_pairs, 3, "phd + graduate_degree + degree");
        assert_eq!(prepared.info.len(), 3, "pair provenance aligned with the closed event");
        assert!(!prepared.truncated);
    }

    #[test]
    fn prepare_materialize_carries_derivation_lattice() {
        let (interner, source, events) = world();
        let config = Config::default().with_strategy(Strategy::MaterializeEvents);
        let frontend = SemanticFrontEnd::new(config, source, interner);
        let prepared = frontend.prepare(&events[0]);
        // root, root+grad, root+degree, root+both.
        assert_eq!(prepared.derived_events, 4);
        assert_eq!(prepared.engine_events.len(), 4);
        assert_eq!(prepared.closure_pairs, 0);
        assert!(prepared.info.is_empty());
    }

    #[test]
    fn prepare_batch_equals_per_event_prepare_for_any_worker_count() {
        let (interner, source, events) = world();
        // Repeat the events so the batch is big enough to chunk.
        let batch: Vec<Event> = events.iter().cycle().take(40).cloned().collect();
        for parallelism in [1usize, 3] {
            let config = Config::default().with_shards(4).with_parallelism(parallelism);
            let frontend = SemanticFrontEnd::new(config, source.clone(), interner.clone());
            let batched = frontend.prepare_batch(&batch);
            assert_eq!(batched.len(), batch.len());
            for (got, event) in batched.iter().zip(&batch) {
                let want = frontend.prepare(event);
                assert_eq!(got.raw, want.raw);
                assert_eq!(got.engine_events, want.engine_events);
                assert_eq!(got.derived_events, want.derived_events);
                assert_eq!(got.closure_pairs, want.closure_pairs);
                assert_eq!(got.truncated, want.truncated);
            }
        }
    }
}
