//! The shared event-side semantic front-end.
//!
//! Everything Figure 1 does to a *publication* — synonym canonicalization,
//! the bounded hierarchy/mapping closure, event materialization — depends
//! only on the event, the ontology, and the configuration; never on which
//! subscriptions are registered. The companion paper "I know what you
//! mean" frames exactly this split: semantic enrichment is a
//! per-publication transform, matching is the per-subscription fan-out.
//! This module computes that transform once, into a [`PreparedEvent`]
//! artifact, so concurrent backends ([`crate::ShardedSToPSS`], the
//! broker's batched publish path) hand shards only the engine-match +
//! verify work instead of recomputing the closure per shard.
//!
//! [`SemanticFrontEnd`] is the detachable handle: a snapshot of the
//! configuration plus shared ontology/interner references, cheap to clone
//! out of a matcher so callers (e.g. the broker) can run the event-side
//! pass detached from the matcher entirely — against one consistent
//! config/ontology snapshot, while control ops swap new snapshots in
//! underneath (the epoch-snapshot control plane; staleness is caught by
//! the `frontend_epoch` check at publish time).
//!
//! # The tier cache
//!
//! The engine events are not the only event-side work a publication
//! induces. Two back-end obligations are *also* pure functions of the
//! event, the ontology and a tolerance — yet they used to be recomputed
//! per matched candidate:
//!
//! * **Tolerance verification**: a subscriber whose effective tolerance
//!   differs from the system-wide one is re-checked by closing the raw
//!   event under *their* tolerance and matching — one full closure per
//!   candidate, even though candidates sharing a tolerance share the
//!   closure.
//! * **Provenance classification**: [`crate::classify_match`] re-derives
//!   the synonym-only and synonym+hierarchy closures per candidate, then
//!   linearly re-closes the event once per candidate hierarchy distance
//!   (up to [`CLASSIFY_DISTANCE_CAP`] times).
//!
//! [`TierCache`] hoists all of it into the per-publication artifact:
//! the classifier's tier closures and one closed event per distinct
//! *verification class* ([`Tolerance::verify_class`]) are computed at
//! most once per publication — lazily on first use, eagerly in the
//! detached stage-1 pass for the classifier tiers (provenance on) *and*
//! for the verification classes registered at subscribe time (the
//! matcher snapshots them into the [`SemanticFrontEnd`] handle) — and
//! shared read-only by every shard through `OnceLock`/`RwLock`
//! interior mutability. The minimal hierarchy distance is read straight
//! off the cached closure's [`PairInfo`] ([`classify_with_tiers`])
//! instead of searched by repeated re-closing. The oracle functions in
//! [`crate::oracle`] are untouched ground truth; byte-identical behaviour
//! is pinned by `tests/tier_cache_differential.rs`.

use stopss_types::sync::{Arc, OnceLock, RwLock};

use stopss_ontology::SemanticSource;
use stopss_types::{Event, FxHashMap, Interner, SharedInterner, Subscription};

use crate::closure::{semantic_closure, ClosedEvent, ClosureLimits, PairInfo};
use crate::config::{Config, Strategy};
use crate::oracle::{classify_match, CLASSIFY_DISTANCE_CAP};
use crate::provenance::MatchOrigin;
use crate::strategy::materialize_closure;
use crate::tolerance::{StageMask, Tolerance};

/// The precomputed event-side semantic pass of one publication: the
/// artifact shards match against, plus the counters the pass produced.
///
/// Equivalent to what [`crate::SToPSS::publish_detailed`] derives
/// internally — computing it once and matching it on N shards is
/// byte-identical to letting every shard recompute it (pinned by
/// `crates/core/tests/frontend_differential.rs`).
#[derive(Clone, Debug)]
pub struct PreparedEvent {
    /// The publication exactly as the publisher wrote it. Tolerance
    /// verification and provenance classification are defined against the
    /// raw event, so it travels with the artifact.
    pub raw: Event,
    /// The events the syntactic engine sees: one flattened closure for
    /// [`Strategy::GeneralizedEvent`] / [`Strategy::SubscriptionRewrite`],
    /// or the materialized derivation lattice (in breadth-first derivation
    /// order) for [`Strategy::MaterializeEvents`].
    pub engine_events: Vec<Event>,
    /// Per-pair derivation provenance of the flattened closure (origin
    /// distance, mapping/hierarchy flags), aligned with
    /// `engine_events[0]`. Empty for the materializing strategy.
    pub info: Vec<PairInfo>,
    /// Derived events fed to the engine (the `derived_events` stat).
    pub derived_events: usize,
    /// Pairs in the closed event (the `closure_pairs` stat; 0 for the
    /// materializing strategy).
    pub closure_pairs: usize,
    /// True if a resource bound clipped the semantic pass.
    pub truncated: bool,
    /// Per-publication closures for tolerance verification and provenance
    /// classification, filled at most once each and shared read-only by
    /// all shards (see the module docs).
    pub tiers: TierCache,
}

/// The engine-facing pieces of the event-side pass, without the owned raw
/// event. The inline single-matcher publish path uses this directly so it
/// can keep borrowing the caller's event; the detachable
/// [`prepare_event`] wraps it into a self-contained [`PreparedEvent`].
pub(crate) struct PreparedParts {
    /// See [`PreparedEvent::engine_events`].
    pub engine_events: Vec<Event>,
    /// See [`PreparedEvent::info`].
    pub info: Vec<PairInfo>,
    /// See [`PreparedEvent::derived_events`].
    pub derived_events: usize,
    /// See [`PreparedEvent::closure_pairs`].
    pub closure_pairs: usize,
    /// See [`PreparedEvent::truncated`].
    pub truncated: bool,
}

pub(crate) fn prepare_parts(
    event: &Event,
    source: &dyn SemanticSource,
    config: &Config,
    interner: &Interner,
) -> PreparedParts {
    match config.strategy {
        Strategy::GeneralizedEvent | Strategy::SubscriptionRewrite => {
            // The rewrite strategy moved hierarchy work to subscribe time;
            // its publications run only the synonym and mapping stages.
            let stages = if config.strategy == Strategy::SubscriptionRewrite {
                config.stages.without(StageMask::HIERARCHY)
            } else {
                config.stages
            };
            let closed = semantic_closure(
                event,
                source,
                stages,
                config.max_distance,
                config.now_year,
                interner,
                &config.limits.closure,
            );
            PreparedParts {
                closure_pairs: closed.event.len(),
                truncated: closed.truncated,
                engine_events: vec![closed.event],
                info: closed.info,
                derived_events: 1,
            }
        }
        Strategy::MaterializeEvents => {
            let materialized = materialize_closure(
                event,
                source,
                config.stages,
                config.max_distance,
                config.now_year,
                interner,
                &config.limits,
            );
            PreparedParts {
                derived_events: materialized.events.len(),
                truncated: materialized.truncated,
                engine_events: materialized.events,
                info: Vec::new(),
                closure_pairs: 0,
            }
        }
    }
}

/// The per-publication tier cache: every closure the matching back end
/// needs beyond the engine events — the provenance classifier's tier
/// closures and one closed event per distinct verification class — each
/// computed at most once per publication and shared read-only by all
/// shards (interior mutability; all methods take `&self` and are safe to
/// call concurrently). See the module docs for why this is event-side
/// work and how it replaces the per-candidate oracle closures.
///
/// One cache serves exactly one `(publication, configuration)` pair: the
/// tier slots memoize the first computation, so callers must not reuse a
/// cache across events or across reconfigurations (the matcher creates
/// one per publication; `reconfigure` never recycles artifacts).
#[derive(Debug, Default)]
pub struct TierCache {
    /// Classifier tier: the synonym-only closure (never truncated).
    synonym: OnceLock<ClosedEvent>,
    /// Classifier tier: the unbounded synonym∩stages+hierarchy closure,
    /// tagged with the stage mask it was computed under.
    hierarchy: OnceLock<(StageMask, ClosedEvent)>,
    /// One closed event per distinct [`Tolerance::verify_class`] among
    /// the candidates verified so far.
    classes: RwLock<FxHashMap<Tolerance, Arc<ClosedEvent>>>,
}

impl Clone for TierCache {
    fn clone(&self) -> Self {
        TierCache {
            synonym: self.synonym.clone(),
            hierarchy: self.hierarchy.clone(),
            classes: RwLock::new(self.classes.read().clone()),
        }
    }
}

impl TierCache {
    /// Creates an empty cache (every tier computed lazily on first use).
    pub fn new() -> Self {
        TierCache::default()
    }

    /// The synonym-only closure of `raw` (classifier tier 2), computed on
    /// first use.
    pub fn synonym_tier(
        &self,
        raw: &Event,
        source: &dyn SemanticSource,
        now_year: i64,
        interner: &Interner,
        limits: &ClosureLimits,
    ) -> &ClosedEvent {
        self.synonym.get_or_init(|| {
            semantic_closure(raw, source, StageMask::SYNONYM, None, now_year, interner, limits)
        })
    }

    /// The unbounded `hier_stages` closure of `raw` (classifier tier 3),
    /// computed on first use. `hier_stages` must be the same on every
    /// call for a given cache (it is a pure function of the
    /// configuration: `stages ∩ (SYNONYM | HIERARCHY)`).
    pub fn hierarchy_tier(
        &self,
        raw: &Event,
        source: &dyn SemanticSource,
        hier_stages: StageMask,
        now_year: i64,
        interner: &Interner,
        limits: &ClosureLimits,
    ) -> &ClosedEvent {
        let (mask, closed) = self.hierarchy.get_or_init(|| {
            (
                hier_stages,
                semantic_closure(raw, source, hier_stages, None, now_year, interner, limits),
            )
        });
        debug_assert_eq!(*mask, hier_stages, "one cache serves one configuration");
        let _ = mask;
        closed
    }

    /// The closed event for `tolerance`'s verification class, computed on
    /// first use. Tolerances with equal [`Tolerance::verify_class`] share
    /// one entry, so per-candidate verification costs one closure per
    /// *distinct class* per publication instead of one per candidate.
    pub fn tolerance_class(
        &self,
        tolerance: &Tolerance,
        raw: &Event,
        source: &dyn SemanticSource,
        now_year: i64,
        interner: &Interner,
        limits: &ClosureLimits,
    ) -> Arc<ClosedEvent> {
        let class = tolerance.verify_class();
        if let Some(hit) = self.classes.read().get(&class) {
            return Arc::clone(hit);
        }
        // Computed outside the write lock; a concurrent shard racing on
        // the same class wastes one idempotent closure at worst.
        let computed = Arc::new(semantic_closure(
            raw,
            source,
            class.stages,
            class.max_distance,
            now_year,
            interner,
            limits,
        ));
        let mut classes = self.classes.write();
        Arc::clone(classes.entry(class).or_insert(computed))
    }

    /// Eagerly fills the classifier tiers the configuration will need, so
    /// the detached front-end pays them in stage 1 (outside any matcher
    /// lock, chunked across the batch workers) rather than the first
    /// matching shard paying them in stage 2.
    pub fn warm_classifier_tiers(
        &self,
        raw: &Event,
        source: &dyn SemanticSource,
        config: &Config,
        interner: &Interner,
    ) {
        if config.stages.synonym() {
            self.synonym_tier(raw, source, config.now_year, interner, &config.limits.closure);
        }
        if config.stages.hierarchy() {
            let hier_stages =
                config.stages.intersect(StageMask::SYNONYM.with(StageMask::HIERARCHY));
            self.hierarchy_tier(
                raw,
                source,
                hier_stages,
                config.now_year,
                interner,
                &config.limits.closure,
            );
        }
    }

    /// Number of distinct verification classes closed so far.
    pub fn class_count(&self) -> usize {
        self.classes.read().len()
    }

    /// True if the classifier tiers have been computed.
    pub fn classifier_tiers_ready(&self) -> bool {
        self.synonym.get().is_some() || self.hierarchy.get().is_some()
    }
}

/// Classifies why `sub` matches `raw` (which it must, under `stages` with
/// unbounded distance) from the publication's tier cache: behaviourally
/// identical to [`crate::classify_match`] — the pinned oracle — but every
/// event-side closure is computed at most once per *publication* instead
/// of per candidate, and the minimal hierarchy distance is read off the
/// cached closure's per-pair [`PairInfo`] instead of searched by
/// re-closing the event once per candidate distance.
///
/// `canonical` must be `sub` rewritten by
/// [`crate::synonym_resolve_subscription`] whenever `stages` enables the
/// synonym stage (and may alias `sub` otherwise); the matcher caches it
/// at subscribe time.
#[allow(clippy::too_many_arguments)] // mirrors the oracle's classify_match
pub fn classify_with_tiers(
    sub: &Subscription,
    canonical: &Subscription,
    raw: &Event,
    tiers: &TierCache,
    source: &dyn SemanticSource,
    stages: StageMask,
    now_year: i64,
    interner: &Interner,
    limits: &ClosureLimits,
) -> MatchOrigin {
    // 1. Syntactic: raw against raw.
    if sub.matches(raw, interner) {
        return MatchOrigin::Syntactic;
    }
    // 2. Synonyms only: the canonical subscription against the cached
    // synonym tier.
    if stages.synonym() {
        let tier = tiers.synonym_tier(raw, source, now_year, interner, limits);
        if canonical.matches(&tier.event, interner) {
            return MatchOrigin::Synonym;
        }
    }
    // 3. Hierarchy (plus synonyms): the smallest sufficient distance,
    // read off the cached unbounded closure.
    if stages.hierarchy() {
        let hier_stages = stages.intersect(StageMask::SYNONYM.with(StageMask::HIERARCHY));
        let tier = tiers.hierarchy_tier(raw, source, hier_stages, now_year, interner, limits);
        if tier.truncated {
            // A truncated closure no longer equals "unbounded pairs
            // filtered by distance": bounded re-closures can reach pairs
            // the truncated run dropped. Defer to the oracle.
            return classify_match(sub, raw, source, stages, now_year, interner, limits);
        }
        let hier_sub = if hier_stages.synonym() { canonical } else { sub };
        if let Some(distance) = min_hierarchy_distance(hier_sub, tier, interner) {
            // Tiers 1–2 not matching guarantees distance ≥ 1; the oracle's
            // linear search also never reports past the cap.
            return MatchOrigin::Hierarchy { distance: distance.clamp(1, CLASSIFY_DISTANCE_CAP) };
        }
    }
    // 4. Anything else needed the mapping stage.
    MatchOrigin::Mapping
}

/// The smallest per-step generalization bound under which `sub` matches
/// the closed event, or `None` if it does not match even unbounded. Each
/// predicate needs only its *closest* satisfying pair (min over pairs);
/// the conjunction needs its *furthest* predicate (max over predicates).
/// Exact because a non-truncated bounded-`k` closure contains precisely
/// the unbounded closure's pairs with minimal derivation distance ≤ `k`.
fn min_hierarchy_distance(
    sub: &Subscription,
    tier: &ClosedEvent,
    interner: &Interner,
) -> Option<u32> {
    let mut overall = 0u32;
    for pred in sub.predicates() {
        let mut best: Option<u32> = None;
        for (idx, (attr, value)) in tier.event.pairs().iter().enumerate() {
            if *attr == pred.attr && pred.eval(value, interner) {
                let distance = tier.info[idx].distance;
                if best.is_none_or(|b| distance < b) {
                    best = Some(distance);
                }
            }
        }
        overall = overall.max(best?);
    }
    Some(overall)
}

/// Computes the event-side semantic pass for `event` under `config`.
///
/// This is the single source of truth for publication-side semantics:
/// [`crate::SToPSS::publish_detailed`] runs it per publication, and
/// [`crate::ShardedSToPSS`] runs it once per publication *before* fanning
/// the matching out to shards. When the configuration tracks provenance
/// through the tier cache, the classifier tiers are warmed here — in the
/// detached stage-1 pass — so shards never pay them.
pub fn prepare_event(
    event: &Event,
    source: &dyn SemanticSource,
    config: &Config,
    interner: &Interner,
) -> PreparedEvent {
    let parts = prepare_parts(event, source, config, interner);
    let prepared = PreparedEvent {
        raw: event.clone(),
        engine_events: parts.engine_events,
        info: parts.info,
        derived_events: parts.derived_events,
        closure_pairs: parts.closure_pairs,
        truncated: parts.truncated,
        tiers: TierCache::new(),
    };
    if config.track_provenance && config.tier_cache {
        prepared.tiers.warm_classifier_tiers(&prepared.raw, source, config, interner);
    }
    prepared
}

/// A detachable handle on the event-side semantic machinery: the
/// configuration snapshot plus the shared ontology and interner, and the
/// verification classes registered at snapshot time.
///
/// Cloned out of a matcher (see [`crate::SToPSS::frontend`] /
/// [`crate::ShardedSToPSS::frontend`]) so the publication-side pass can
/// run detached from the matcher — the broker uses this to prepare whole
/// batches ahead of dispatch, and the sharded matcher's pipelined
/// `publish_batch` prepares chunk *k+1* on it while the shards match
/// chunk *k*. It is a point-in-time snapshot: a control op that changes
/// stages/config/ontology bumps `frontend_epoch`, and artifacts prepared
/// on a stale handle are rejected at publish time and re-prepared.
#[derive(Clone)]
pub struct SemanticFrontEnd {
    config: Config,
    source: Arc<dyn SemanticSource>,
    interner: SharedInterner,
    /// Distinct [`Tolerance::verify_class`] values among the matcher's
    /// registered subscriptions at snapshot time (see
    /// [`crate::SToPSS::verify_classes`]). Warmed into every artifact's
    /// tier cache during stage 1, alongside the classifier tiers, so no
    /// matching shard pays a class closure on first use. Empty by default
    /// (the cache then fills lazily, exactly as before).
    verify_classes: Arc<[Tolerance]>,
    /// The `frontend_epoch` of the matcher snapshot this front-end was
    /// detached from. Artifacts prepared here are valid exactly while the
    /// matcher's front-end epoch still equals this tag (see
    /// [`crate::SToPSS::try_publish_prepared_batch`]); 0 for a front-end
    /// built directly rather than detached from a matcher.
    epoch: u64,
}

/// Minimum publications per front-end worker before another thread is
/// worth spawning (a scoped spawn costs more than a handful of closures).
const MIN_EVENTS_PER_WORKER: usize = 16;

impl SemanticFrontEnd {
    /// Creates a front-end over `source` with `config`'s semantics and no
    /// verification classes to warm.
    pub fn new(config: Config, source: Arc<dyn SemanticSource>, interner: SharedInterner) -> Self {
        SemanticFrontEnd { config, source, interner, verify_classes: Arc::from([]), epoch: 0 }
    }

    /// Returns a copy tagged with the matcher snapshot's front-end epoch
    /// (see [`SemanticFrontEnd::epoch`]).
    #[must_use]
    pub fn with_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    /// The front-end epoch of the matcher snapshot this handle was
    /// detached from — the staleness tag to pass back to
    /// [`crate::SToPSS::try_publish_prepared_batch`] (or its sharded
    /// counterpart).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Returns a copy that warms `classes` into every prepared artifact's
    /// tier cache during stage 1 (only meaningful with
    /// [`Config::tier_cache`] on; lazily-filled behaviour is
    /// byte-identical either way).
    #[must_use]
    pub fn with_verify_classes(mut self, classes: Vec<Tolerance>) -> Self {
        self.verify_classes = classes.into();
        self
    }

    /// The configuration snapshot this front-end prepares under.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Prepares one publication.
    pub fn prepare(&self, event: &Event) -> PreparedEvent {
        self.interner.with(|i| self.prepare_one(event, i))
    }

    /// The per-event stage-1 pass: [`prepare_event`] plus eager warming of
    /// the registered verification classes (the classifier tiers are
    /// warmed inside `prepare_event` itself).
    fn prepare_one(&self, event: &Event, interner: &Interner) -> PreparedEvent {
        let prepared = prepare_event(event, self.source.as_ref(), &self.config, interner);
        if self.config.tier_cache {
            for tolerance in self.verify_classes.iter() {
                prepared.tiers.tolerance_class(
                    tolerance,
                    &prepared.raw,
                    self.source.as_ref(),
                    self.config.now_year,
                    interner,
                    &self.config.limits.closure,
                );
            }
        }
        prepared
    }

    /// Prepares a batch of publications, in order.
    ///
    /// The per-event passes are independent pure functions, so the batch
    /// is chunked across up to [`Config::effective_parallelism`] scoped
    /// workers (capped by the host's available parallelism and by
    /// `MIN_EVENTS_PER_WORKER`); results are position-stable, so the
    /// output is identical to the sequential pass regardless of worker
    /// count.
    pub fn prepare_batch(&self, events: &[Event]) -> Vec<PreparedEvent> {
        let workers = self.batch_workers(events.len());
        if workers <= 1 {
            return self.interner.with(|i| events.iter().map(|e| self.prepare_one(e, i)).collect());
        }
        let chunk = events.len().div_ceil(workers);
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = events
                .chunks(chunk)
                .map(|chunk_events| {
                    scope.spawn(move |_| {
                        self.interner.with(|i| {
                            chunk_events.iter().map(|e| self.prepare_one(e, i)).collect::<Vec<_>>()
                        })
                    })
                })
                .collect();
            // Joined in spawn order, so event order is preserved.
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("invariant: front-end workers do not panic"))
                .collect()
        })
        .expect("invariant: front-end scope threads do not panic")
    }

    /// Worker count for a batch of `events` publications: bounded by the
    /// configured parallelism, the hardware, and the batch size.
    fn batch_workers(&self, events: usize) -> usize {
        let configured = self.config.effective_parallelism();
        let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());
        configured.min(hardware).min(events.div_ceil(MIN_EVENTS_PER_WORKER)).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stopss_ontology::Ontology;
    use stopss_types::{EventBuilder, Interner};

    fn world() -> (SharedInterner, Arc<Ontology>, Vec<Event>) {
        let mut i = Interner::new();
        let mut o = Ontology::new("t");
        let degree = i.intern("degree");
        let grad = i.intern("graduate_degree");
        let phd = i.intern("phd");
        o.taxonomy.add_isa(grad, degree, &i).unwrap();
        o.taxonomy.add_isa(phd, grad, &i).unwrap();
        let events = vec![
            EventBuilder::new(&mut i).term("credential", "phd").build(),
            EventBuilder::new(&mut i).term("credential", "degree").build(),
            EventBuilder::new(&mut i).term("credential", "other").build(),
        ];
        (SharedInterner::from_interner(i), Arc::new(o), events)
    }

    #[test]
    fn prepare_flattened_carries_closure_and_provenance() {
        let (interner, source, events) = world();
        let frontend = SemanticFrontEnd::new(Config::default(), source, interner);
        let prepared = frontend.prepare(&events[0]);
        assert_eq!(prepared.raw, events[0]);
        assert_eq!(prepared.engine_events.len(), 1);
        assert_eq!(prepared.derived_events, 1);
        assert_eq!(prepared.closure_pairs, 3, "phd + graduate_degree + degree");
        assert_eq!(prepared.info.len(), 3, "pair provenance aligned with the closed event");
        assert!(!prepared.truncated);
    }

    #[test]
    fn prepare_materialize_carries_derivation_lattice() {
        let (interner, source, events) = world();
        let config = Config::default().with_strategy(Strategy::MaterializeEvents);
        let frontend = SemanticFrontEnd::new(config, source, interner);
        let prepared = frontend.prepare(&events[0]);
        // root, root+grad, root+degree, root+both.
        assert_eq!(prepared.derived_events, 4);
        assert_eq!(prepared.engine_events.len(), 4);
        assert_eq!(prepared.closure_pairs, 0);
        assert!(prepared.info.is_empty());
    }

    #[test]
    fn prepare_warms_classifier_tiers_only_with_provenance_on() {
        let (interner, source, events) = world();
        let warm = SemanticFrontEnd::new(Config::default(), source.clone(), interner.clone());
        assert!(warm.prepare(&events[0]).tiers.classifier_tiers_ready());
        let cold_configs =
            [Config::default().with_provenance(false), Config::default().with_tier_cache(false)];
        for config in cold_configs {
            let frontend = SemanticFrontEnd::new(config, source.clone(), interner.clone());
            assert!(!frontend.prepare(&events[0]).tiers.classifier_tiers_ready());
        }
    }

    #[test]
    fn tolerance_classes_are_shared_and_lazy() {
        use crate::tolerance::Tolerance;
        let (interner, source, events) = world();
        let frontend = SemanticFrontEnd::new(Config::default(), source.clone(), interner.clone());
        let prepared = frontend.prepare(&events[0]);
        assert_eq!(prepared.tiers.class_count(), 0, "classes fill on demand only");
        interner.with(|i| {
            let lim = ClosureLimits::default();
            let a = prepared.tiers.tolerance_class(
                &Tolerance::bounded(1),
                &prepared.raw,
                source.as_ref(),
                2003,
                i,
                &lim,
            );
            // Same class again: served from the cache, same artifact.
            let b = prepared.tiers.tolerance_class(
                &Tolerance::bounded(1),
                &prepared.raw,
                source.as_ref(),
                2003,
                i,
                &lim,
            );
            assert!(Arc::ptr_eq(&a, &b), "equal classes share one closure");
            assert_eq!(prepared.tiers.class_count(), 1);
            // Equivalent tolerances (hierarchy off ≡ distance 0) collapse.
            let c = prepared.tiers.tolerance_class(
                &Tolerance { stages: StageMask::all(), max_distance: Some(0) },
                &prepared.raw,
                source.as_ref(),
                2003,
                i,
                &lim,
            );
            let d = prepared.tiers.tolerance_class(
                &Tolerance::stages(StageMask::all().without(StageMask::HIERARCHY)),
                &prepared.raw,
                source.as_ref(),
                2003,
                i,
                &lim,
            );
            assert!(Arc::ptr_eq(&c, &d), "verify classes collapse equivalent tolerances");
            assert_eq!(prepared.tiers.class_count(), 2);
            // The cached closure equals a fresh oracle-side closure.
            let fresh = semantic_closure(
                &prepared.raw,
                source.as_ref(),
                StageMask::all(),
                Some(1),
                2003,
                i,
                &lim,
            );
            assert_eq!(a.event, fresh.event);
            assert_eq!(a.truncated, fresh.truncated);
        });
        // Cloning an artifact snapshots the cache contents.
        let cloned = prepared.clone();
        assert_eq!(cloned.tiers.class_count(), 2);
        assert!(cloned.tiers.classifier_tiers_ready());
    }

    #[test]
    fn classify_with_tiers_matches_oracle_on_the_taxonomy_world() {
        use crate::oracle::classify_match;
        use stopss_types::{SubId, SubscriptionBuilder};
        let mut i = Interner::new();
        let mut o = Ontology::new("t");
        let degree = i.intern("degree");
        let grad = i.intern("graduate_degree");
        let phd = i.intern("phd");
        o.taxonomy.add_isa(grad, degree, &i).unwrap();
        o.taxonomy.add_isa(phd, grad, &i).unwrap();
        let subs = [
            SubscriptionBuilder::new(&mut i).term_eq("credential", "degree").build(SubId(1)),
            SubscriptionBuilder::new(&mut i)
                .term_eq("credential", "graduate_degree")
                .build(SubId(2)),
            SubscriptionBuilder::new(&mut i).term_eq("credential", "phd").build(SubId(3)),
        ];
        let event = EventBuilder::new(&mut i).term("credential", "phd").build();
        let lim = ClosureLimits::default();
        let tiers = TierCache::new();
        for sub in &subs {
            let want = classify_match(sub, &event, &o, StageMask::all(), 2003, &i, &lim);
            let got =
                classify_with_tiers(sub, sub, &event, &tiers, &o, StageMask::all(), 2003, &i, &lim);
            assert_eq!(got, want, "sub {:?}", sub.id());
        }
    }

    #[test]
    fn prepare_batch_equals_per_event_prepare_for_any_worker_count() {
        let (interner, source, events) = world();
        // Repeat the events so the batch is big enough to chunk.
        let batch: Vec<Event> = events.iter().cycle().take(40).cloned().collect();
        for parallelism in [1usize, 3] {
            let config = Config::default().with_shards(4).with_parallelism(parallelism);
            let frontend = SemanticFrontEnd::new(config, source.clone(), interner.clone());
            let batched = frontend.prepare_batch(&batch);
            assert_eq!(batched.len(), batch.len());
            for (got, event) in batched.iter().zip(&batch) {
                let want = frontend.prepare(event);
                assert_eq!(got.raw, want.raw);
                assert_eq!(got.engine_events, want.engine_events);
                assert_eq!(got.derived_events, want.derived_events);
                assert_eq!(got.closure_pairs, want.closure_pairs);
                assert_eq!(got.truncated, want.truncated);
            }
        }
    }
}
