//! Reference semantics.
//!
//! [`semantic_match`] decides the semantic matching relation directly from
//! its definition — synonym canonicalization, bounded closure, conjunctive
//! ∃-semantics — without any engine, index, or strategy. It is the ground
//! truth for the property tests, the per-subscription tolerance filter,
//! and the provenance classifier.
//!
//! Since the tier-cache PR these functions are no longer on the hot
//! matching path: per-candidate tolerance verification and provenance
//! classification are served from the per-publication
//! [`crate::TierCache`] (see `frontend.rs`), which computes each closure
//! at most once per publication instead of per candidate — [`classify_match`]
//! alone used to re-derive up to 3 closures plus one per candidate
//! hierarchy distance (bounded by [`CLASSIFY_DISTANCE_CAP`]). The
//! functions here stay **untouched ground truth**: the oracle path
//! remains selectable via `Config::tier_cache = false`, and
//! `tests/tier_cache_differential.rs` pins the cached fast path
//! byte-identical to it across engines × strategies × stage masks ×
//! mixed tolerances, including truncated-closure and distance-cap edge
//! cases.

use stopss_ontology::SemanticSource;
use stopss_types::{Event, Interner, Subscription};

use crate::closure::{semantic_closure, synonym_resolve_subscription, ClosureLimits};
use crate::provenance::MatchOrigin;
use crate::tolerance::{StageMask, Tolerance};

/// Largest hierarchy distance the provenance classifier searches before
/// reporting the match as "distance ≥ cap". Real taxonomies are shallow
/// (WordNet-scale hierarchies stay under 20 levels).
pub const CLASSIFY_DISTANCE_CAP: u32 = 64;

/// Does `sub` semantically match `event_raw` under `tolerance`?
///
/// Both inputs are *raw* (as the subscriber/publisher wrote them): the
/// synonym stage is applied here iff the tolerance enables it, which is
/// what makes per-subscriber "no synonyms please" meaningful.
pub fn semantic_match(
    sub: &Subscription,
    event_raw: &Event,
    source: &dyn SemanticSource,
    tolerance: &Tolerance,
    now_year: i64,
    interner: &Interner,
    limits: &ClosureLimits,
) -> bool {
    let resolved_sub;
    let sub = if tolerance.stages.synonym() {
        resolved_sub = synonym_resolve_subscription(sub, source);
        &resolved_sub
    } else {
        sub
    };
    let closed = semantic_closure(
        event_raw,
        source,
        tolerance.stages,
        tolerance.max_distance,
        now_year,
        interner,
        limits,
    );
    sub.matches(&closed.event, interner)
}

/// Classifies why `sub` matches `event_raw` (which it must, under
/// `stages` with unbounded distance): the weakest machinery that already
/// produces the match.
pub fn classify_match(
    sub: &Subscription,
    event_raw: &Event,
    source: &dyn SemanticSource,
    stages: StageMask,
    now_year: i64,
    interner: &Interner,
    limits: &ClosureLimits,
) -> MatchOrigin {
    // 1. Syntactic: raw against raw.
    if sub.matches(event_raw, interner) {
        return MatchOrigin::Syntactic;
    }
    // 2. Synonyms only.
    if stages.synonym()
        && semantic_match(
            sub,
            event_raw,
            source,
            &Tolerance { stages: StageMask::SYNONYM, max_distance: None },
            now_year,
            interner,
            limits,
        )
    {
        return MatchOrigin::Synonym;
    }
    // 3. Hierarchy (plus synonyms): find the smallest sufficient distance.
    let hier_stages = stages.intersect(StageMask::SYNONYM.with(StageMask::HIERARCHY));
    if stages.hierarchy()
        && semantic_match(
            sub,
            event_raw,
            source,
            &Tolerance { stages: hier_stages, max_distance: None },
            now_year,
            interner,
            limits,
        )
    {
        for k in 1..=CLASSIFY_DISTANCE_CAP {
            if semantic_match(
                sub,
                event_raw,
                source,
                &Tolerance { stages: hier_stages, max_distance: Some(k) },
                now_year,
                interner,
                limits,
            ) {
                return MatchOrigin::Hierarchy { distance: k };
            }
        }
        return MatchOrigin::Hierarchy { distance: CLASSIFY_DISTANCE_CAP };
    }
    // 4. Anything else needed the mapping stage.
    MatchOrigin::Mapping
}

#[cfg(test)]
mod tests {
    use super::*;
    use stopss_ontology::{Expr, MappingFunction, Ontology, PatternItem, Production};
    use stopss_types::{EventBuilder, Interner, Operator, SubId, SubscriptionBuilder};

    /// The complete §1/§3.1 worked example of the paper.
    fn paper_world(i: &mut Interner) -> Ontology {
        let mut o = Ontology::new("jobs");
        let university = i.intern("university");
        let school = i.intern("school");
        o.synonyms.add_synonym(university, school, i).unwrap();
        let we = i.intern("work experience");
        let pe = i.intern("professional experience");
        o.synonyms.add_synonym(pe, we, i).unwrap();
        let gy = i.intern("graduation year");
        o.mappings
            .register(MappingFunction::new(
                "experience_from_graduation",
                vec![PatternItem { attr: gy, guard: None }],
                vec![Production { attr: pe, expr: Expr::sub(Expr::Now, Expr::Attr(gy)) }],
            ))
            .unwrap();
        o
    }

    #[test]
    fn paper_section_3_1_synonym_example() {
        // S: (university = Toronto) ∧ (professional experience ≥ 4)
        // E: (school, Toronto)(professional experience, 5)
        let mut i = Interner::new();
        let o = paper_world(&mut i);
        let sub = SubscriptionBuilder::new(&mut i)
            .term_eq("university", "toronto")
            .pred("professional experience", Operator::Ge, 4i64)
            .build(SubId(1));
        let e = EventBuilder::new(&mut i)
            .term("school", "toronto")
            .pair("professional experience", 5i64)
            .build();
        assert!(
            !sub.matches(&e, &i),
            "syntactically 'school' does not match 'university' — the paper's point"
        );
        assert!(semantic_match(
            &sub,
            &e,
            &o,
            &Tolerance::full(),
            2003,
            &i,
            &ClosureLimits::default()
        ));
        assert_eq!(
            classify_match(&sub, &e, &o, StageMask::all(), 2003, &i, &ClosureLimits::default()),
            MatchOrigin::Synonym
        );
    }

    #[test]
    fn paper_section_3_1_mapping_example() {
        // S: (university = Toronto) ∧ (professional experience ≥ 4)
        // E: (school, Toronto)(graduation year, 1993)(job1, IBM)…
        let mut i = Interner::new();
        let o = paper_world(&mut i);
        let sub = SubscriptionBuilder::new(&mut i)
            .term_eq("university", "toronto")
            .pred("professional experience", Operator::Ge, 4i64)
            .build(SubId(1));
        let e = EventBuilder::new(&mut i)
            .term("school", "toronto")
            .pair("graduation year", 1993i64)
            .term("job1", "ibm")
            .term("job2", "microsoft")
            .build();
        assert!(semantic_match(
            &sub,
            &e,
            &o,
            &Tolerance::full(),
            2003,
            &i,
            &ClosureLimits::default()
        ));
        assert_eq!(
            classify_match(&sub, &e, &o, StageMask::all(), 2003, &i, &ClosureLimits::default()),
            MatchOrigin::Mapping
        );
        // Without the mapping stage there is no match.
        let no_mapping =
            Tolerance { stages: StageMask::all().without(StageMask::MAPPING), max_distance: None };
        assert!(!semantic_match(&sub, &e, &o, &no_mapping, 2003, &i, &ClosureLimits::default()));
    }

    #[test]
    fn rule_r2_general_events_do_not_match_special_subscriptions() {
        let mut i = Interner::new();
        let mut o = Ontology::new("t");
        let vehicle = i.intern("vehicle");
        let car = i.intern("car");
        o.taxonomy.add_isa(car, vehicle, &i).unwrap();
        let sub_special = SubscriptionBuilder::new(&mut i).term_eq("item", "car").build(SubId(1));
        let sub_general =
            SubscriptionBuilder::new(&mut i).term_eq("item", "vehicle").build(SubId(2));
        let event_general = EventBuilder::new(&mut i).term("item", "vehicle").build();
        let event_special = EventBuilder::new(&mut i).term("item", "car").build();
        let t = Tolerance::full();
        let lim = ClosureLimits::default();
        // R1: special event, general subscription → match.
        assert!(semantic_match(&sub_general, &event_special, &o, &t, 0, &i, &lim));
        // R2: general event, special subscription → no match.
        assert!(!semantic_match(&sub_special, &event_general, &o, &t, 0, &i, &lim));
    }

    #[test]
    fn tolerance_distance_bounds_the_match() {
        let mut i = Interner::new();
        let mut o = Ontology::new("t");
        let (a, b, c) = (i.intern("a"), i.intern("b"), i.intern("c"));
        o.taxonomy.add_isa(a, b, &i).unwrap();
        o.taxonomy.add_isa(b, c, &i).unwrap();
        let sub = SubscriptionBuilder::new(&mut i).term_eq("x", "c").build(SubId(1));
        let e = EventBuilder::new(&mut i).term("x", "a").build();
        let lim = ClosureLimits::default();
        assert!(semantic_match(&sub, &e, &o, &Tolerance::bounded(2), 0, &i, &lim));
        assert!(!semantic_match(&sub, &e, &o, &Tolerance::bounded(1), 0, &i, &lim));
        assert_eq!(
            classify_match(&sub, &e, &o, StageMask::all(), 0, &i, &lim),
            MatchOrigin::Hierarchy { distance: 2 }
        );
    }

    #[test]
    fn attribute_names_generalize_too() {
        // The hierarchy covers attributes as well as values ("a concept
        // hierarchy contains all terms within a specific domain, which
        // includes both attributes and values").
        let mut i = Interner::new();
        let mut o = Ontology::new("t");
        let compensation = i.intern("compensation");
        let salary = i.intern("salary");
        o.taxonomy.add_isa(salary, compensation, &i).unwrap();
        let sub = SubscriptionBuilder::new(&mut i)
            .pred("compensation", Operator::Ge, 50_000i64)
            .build(SubId(1));
        let e = EventBuilder::new(&mut i).pair("salary", 60_000i64).build();
        assert!(semantic_match(&sub, &e, &o, &Tolerance::full(), 0, &i, &ClosureLimits::default()));
        assert_eq!(
            classify_match(&sub, &e, &o, StageMask::all(), 0, &i, &ClosureLimits::default()),
            MatchOrigin::Hierarchy { distance: 1 }
        );
    }

    #[test]
    fn syntactic_tolerance_matches_only_raw() {
        let mut i = Interner::new();
        let o = paper_world(&mut i);
        let sub = SubscriptionBuilder::new(&mut i).term_eq("university", "toronto").build(SubId(1));
        let aliased = EventBuilder::new(&mut i).term("school", "toronto").build();
        let exact = EventBuilder::new(&mut i).term("university", "toronto").build();
        let t = Tolerance::syntactic();
        let lim = ClosureLimits::default();
        assert!(!semantic_match(&sub, &aliased, &o, &t, 2003, &i, &lim));
        assert!(semantic_match(&sub, &exact, &o, &t, 2003, &i, &lim));
        assert_eq!(
            classify_match(&sub, &exact, &o, StageMask::all(), 2003, &i, &lim),
            MatchOrigin::Syntactic
        );
    }
}
