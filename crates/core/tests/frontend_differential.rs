//! Differential suite for the shared semantic front-end.
//!
//! The hoisted design rests on one claim: the event-side semantic pass
//! ([`stopss_core::prepare_event`]) depends only on the event, the
//! ontology and the configuration — never on which subscriptions a shard
//! holds — so computing it once and matching the artifact on N shards is
//! byte-identical to letting every shard recompute it (the PR-2
//! replicated design). This suite pins that claim directly in
//! `stopss-core`, across strategies × stage masks, plus the pipelined
//! `publish_batch` interleaving regressions under constrained and
//! unconstrained parallelism.

use std::sync::Arc;

use stopss_core::{
    shard_of, Config, Match, PublishResult, SToPSS, ShardedSToPSS, StageMask, Strategy,
};
use stopss_ontology::{Expr, MappingFunction, Ontology, PatternItem, Production};
use stopss_types::{
    Event, EventBuilder, Interner, Operator, SharedInterner, SubId, Subscription,
    SubscriptionBuilder,
};

struct World {
    interner: SharedInterner,
    source: Arc<Ontology>,
    subs: Vec<Subscription>,
    events: Vec<Event>,
}

/// A taxonomy + mapping world exercising all three semantic stages, with
/// enough subscriptions that every shard count gets a non-empty
/// partition.
fn world() -> World {
    let mut i = Interner::new();
    let mut o = Ontology::new("jobs");
    let university = i.intern("university");
    let school = i.intern("school");
    o.synonyms.add_synonym(university, school, &i).unwrap();
    let degree = i.intern("degree");
    let grad = i.intern("graduate_degree");
    let phd = i.intern("phd");
    o.taxonomy.add_isa(grad, degree, &i).unwrap();
    o.taxonomy.add_isa(phd, grad, &i).unwrap();
    let gy = i.intern("graduation_year");
    let pe = i.intern("professional_experience");
    o.mappings
        .register(MappingFunction::new(
            "experience",
            vec![PatternItem { attr: gy, guard: None }],
            vec![Production { attr: pe, expr: Expr::sub(Expr::Now, Expr::Attr(gy)) }],
        ))
        .unwrap();

    let mut subs = Vec::new();
    for k in 0..24u64 {
        let sub = match k % 4 {
            0 => SubscriptionBuilder::new(&mut i)
                .term_eq("credential", ["degree", "graduate_degree", "phd"][(k / 4) as usize % 3])
                .build(SubId(k + 1)),
            1 => SubscriptionBuilder::new(&mut i)
                .term_eq("university", "toronto")
                .build(SubId(k + 1)),
            2 => SubscriptionBuilder::new(&mut i)
                .pred("professional_experience", Operator::Ge, 4i64)
                .build(SubId(k + 1)),
            _ => SubscriptionBuilder::new(&mut i)
                .term_eq("school", "toronto")
                .term_eq("credential", "degree")
                .build(SubId(k + 1)),
        };
        subs.push(sub);
    }
    let events = vec![
        EventBuilder::new(&mut i).term("credential", "phd").build(),
        EventBuilder::new(&mut i)
            .term("school", "toronto")
            .pair("graduation_year", 1993i64)
            .build(),
        EventBuilder::new(&mut i)
            .term("university", "toronto")
            .term("credential", "degree")
            .build(),
        EventBuilder::new(&mut i).term("credential", "other").build(),
    ];
    World { interner: SharedInterner::from_interner(i), source: Arc::new(o), subs, events }
}

fn representative_masks() -> [StageMask; 5] {
    [
        StageMask::syntactic(),
        StageMask::SYNONYM,
        StageMask::SYNONYM.with(StageMask::HIERARCHY),
        StageMask::HIERARCHY.with(StageMask::MAPPING),
        StageMask::all(),
    ]
}

fn single_matcher(w: &World, config: Config) -> SToPSS {
    let m = SToPSS::new(config, w.source.clone(), w.interner.clone());
    for sub in &w.subs {
        m.subscribe(sub.clone());
    }
    m
}

/// The PR-2 replicated reference: N full matchers partitioned by
/// `shard_of`, each recomputing the complete semantic pass per event.
fn replicated_shards(w: &World, config: Config, shards: usize) -> Vec<SToPSS> {
    let out: Vec<SToPSS> =
        (0..shards).map(|_| SToPSS::new(config, w.source.clone(), w.interner.clone())).collect();
    for sub in &w.subs {
        out[shard_of(sub.id(), shards)].subscribe(sub.clone());
    }
    out
}

fn merge_replicated(per_shard: Vec<PublishResult>) -> Vec<Match> {
    let mut matches: Vec<Match> = per_shard.into_iter().flat_map(|r| r.matches).collect();
    matches.sort_unstable_by_key(|m| m.sub);
    matches
}

/// The hoisted artifact carries exactly the closure pairs, derived-event
/// counts and truncation flags that per-shard recomputation produces —
/// and matching the artifact per shard yields the same merged match set.
#[test]
fn hoisted_artifact_equals_per_shard_recomputation_across_stage_masks() {
    let w = world();
    for strategy in Strategy::ALL {
        for stages in representative_masks() {
            let config = Config::default().with_strategy(strategy).with_stages(stages);
            for shards in [2usize, 4] {
                let frontend = SToPSS::new(config, w.source.clone(), w.interner.clone()).frontend();
                let mut replicated = replicated_shards(&w, config, shards);
                let label =
                    format!("strategy={} stages={stages:?} shards={shards}", strategy.name());
                for event in &w.events {
                    let prepared = frontend.prepare(event);
                    // Per-shard full recomputation (the replicated design).
                    let per_shard: Vec<PublishResult> =
                        replicated.iter_mut().map(|s| s.publish_detailed(event)).collect();
                    for r in &per_shard {
                        assert_eq!(
                            (r.derived_events, r.closure_pairs, r.truncated),
                            (prepared.derived_events, prepared.closure_pairs, prepared.truncated),
                            "{label}: event-side counters must not depend on shard contents"
                        );
                    }
                    // Matching the shared artifact per shard gives the
                    // same merged match set as full recomputation.
                    let mut hoisted_shards = replicated_shards(&w, config, shards);
                    let mut hoisted: Vec<Match> = hoisted_shards
                        .iter_mut()
                        .flat_map(|s| s.match_prepared(&prepared).matches)
                        .collect();
                    hoisted.sort_unstable_by_key(|m| m.sub);
                    assert_eq!(hoisted, merge_replicated(per_shard), "{label}: matches diverged");
                }
            }
        }
    }
}

/// `publish_prepared` is `publish_detailed` split in two: same matches,
/// same counters, same lifetime stats.
#[test]
fn publish_prepared_equals_publish_detailed() {
    let w = world();
    for strategy in Strategy::ALL {
        let config = Config::default().with_strategy(strategy);
        let direct = single_matcher(&w, config);
        let split = single_matcher(&w, config);
        for event in &w.events {
            let want = direct.publish_detailed(event);
            let prepared = split.prepare(event);
            let got = split.publish_prepared(&prepared);
            assert_eq!(got.matches, want.matches, "strategy={}", strategy.name());
            assert_eq!(got.derived_events, want.derived_events);
            assert_eq!(got.closure_pairs, want.closure_pairs);
            assert_eq!(got.truncated, want.truncated);
        }
        assert_eq!(split.stats(), direct.stats(), "strategy={}", strategy.name());
    }
}

/// The pipelined `publish_batch` interleaving regression: batch feeding
/// (front-end stage + shard stage) equals per-event publishing, with the
/// worker pool constrained to one thread and fanned wide.
#[test]
fn pipelined_batch_equals_per_event_under_any_parallelism() {
    let w = world();
    for parallelism in [1usize, 3] {
        let config = Config::default().with_shards(4).with_parallelism(parallelism);
        let single = single_matcher(&w, config);
        let per_event: Vec<Vec<Match>> = w.events.iter().map(|e| single.publish(e)).collect();

        let sharded = ShardedSToPSS::new(config, w.source.clone(), w.interner.clone());
        for sub in &w.subs {
            sharded.subscribe(sub.clone());
        }
        let batched = sharded.publish_batch(&w.events);
        assert_eq!(batched, per_event, "parallelism={parallelism}");
        assert_eq!(sharded.stats(), single.stats(), "parallelism={parallelism} stats");

        // A second pass through the prepared-artifact entry point (the
        // broker's pipeline) must keep agreeing and keep stats in sync.
        let prepared = sharded.frontend().prepare_batch(&w.events);
        let results = sharded.publish_prepared_batch(&prepared);
        let again: Vec<Vec<Match>> = results.into_iter().map(|r| r.matches).collect();
        let per_event_again: Vec<Vec<Match>> = w.events.iter().map(|e| single.publish(e)).collect();
        assert_eq!(again, per_event_again, "parallelism={parallelism} prepared path");
        assert_eq!(sharded.stats(), single.stats(), "parallelism={parallelism} prepared stats");
    }
}

/// Large enough batch to make the front-end stage itself chunk across
/// workers: still position-stable and identical to sequential.
#[test]
fn parallel_frontend_stage_is_position_stable() {
    let w = world();
    let batch: Vec<Event> = w.events.iter().cycle().take(96).cloned().collect();
    let sequential_config = Config::default().with_shards(4).with_parallelism(1);
    let wide_config = Config::default().with_shards(4).with_parallelism(4);
    let sequential = ShardedSToPSS::new(sequential_config, w.source.clone(), w.interner.clone());
    let wide = ShardedSToPSS::new(wide_config, w.source.clone(), w.interner.clone());
    for sub in &w.subs {
        sequential.subscribe(sub.clone());
        wide.subscribe(sub.clone());
    }
    assert_eq!(wide.publish_batch(&batch), sequential.publish_batch(&batch));
    assert_eq!(wide.stats(), sequential.stats());
}
