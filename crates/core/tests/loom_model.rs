//! Bounded model checking of the epoch-snapshot control plane with the
//! vendored `loom-lite` checker.
//!
//! Run with the `loom` feature so `stopss_types::sync` swaps to the
//! instrumented primitives:
//!
//! ```text
//! cargo test -p stopss-core --features loom --test loom_model
//! ```
//!
//! Each test explores every thread interleaving of the instrumented
//! lock/atomic operations within a preemption bound (2 unless noted),
//! asserting its invariants on all of them. The `_caught` test is the
//! negative control: it seeds the *unserialized* variant of the
//! snapshot swap — the bug class `SToPSS::mutate`'s control mutex
//! exists to prevent — and proves the checker both finds the lost
//! update and replays the failing schedule deterministically.
#![cfg(feature = "loom")]

use loom_lite::sync::{Arc, Mutex, RwLock};
use loom_lite::{replay, thread, Builder};
use stopss_core::{Config, SToPSS};
use stopss_ontology::Ontology;
use stopss_types::{
    Event, Interner, Operator, Predicate, SharedInterner, SubId, Subscription, Value,
};

/// A minimal matcher world: one attribute, one term, syntactic config
/// (no semantic stages — the point is the snapshot plumbing, not the
/// matching pipeline).
fn small_world() -> (SToPSS, Subscription, Event) {
    let mut interner = Interner::new();
    let attr = interner.intern("a0");
    let term = interner.intern("t0");
    let shared = SharedInterner::from_interner(interner);
    let matcher = SToPSS::new(Config::syntactic(), Arc::new(Ontology::new("model")), shared);
    let sub =
        Subscription::new(SubId(1), vec![Predicate::new(attr, Operator::Eq, Value::Sym(term))]);
    let event = Event::from_pairs(vec![(attr, Value::Sym(term))]);
    (matcher, sub, event)
}

/// A publisher racing a control-plane subscribe observes either the old
/// snapshot or the new one — never a torn state — and the epoch it
/// reports is the linearization token: epoch 1 implies the subscription
/// is visible, a reported match implies epoch 1.
#[test]
fn epoch_snapshot_swap_is_linearized() {
    let report = Builder::default().check(|| {
        let (matcher, sub, event) = small_world();
        let matcher = Arc::new(matcher);
        let writer = {
            let matcher = matcher.clone();
            thread::spawn(move || matcher.subscribe(sub))
        };
        let result = matcher.publish_detailed(&event);
        let new_epoch = writer.join().expect("subscriber thread must not panic");
        assert_eq!(new_epoch, 1, "one mutation bumps the control epoch once");
        assert!(result.epoch <= 1, "publisher saw an epoch no mutation created");
        if result.epoch == 1 {
            assert_eq!(
                result.matches.len(),
                1,
                "epoch-1 snapshot must already contain the subscription"
            );
        } else {
            assert!(
                result.matches.is_empty(),
                "epoch-0 snapshot must not contain the subscription"
            );
        }
        assert_eq!(matcher.control_epoch(), 1);
        assert_eq!(matcher.publish(&event).len(), 1, "post-join snapshot serves the sub");
    });
    assert!(report.complete, "epoch-swap space must be exhausted, ran {report:?}");
    assert!(report.schedules >= 2, "expected real interleaving, ran {report:?}");
}

/// Two concurrent publishers bump the shared `AtomicStats` counters;
/// the per-counter sums are exact under every interleaving (they are
/// monotone relaxed counters — this is the claim the `// ordering:`
/// annotations in `matcher.rs` make).
#[test]
fn atomic_stats_merge_conserves_counts() {
    let report = Builder::default().check(|| {
        let (matcher, _sub, event) = small_world();
        let matcher = Arc::new(matcher);
        let other = {
            let matcher = matcher.clone();
            let event = event.clone();
            thread::spawn(move || matcher.publish(&event))
        };
        matcher.publish(&event);
        let mid = matcher.stats().published;
        assert!(mid >= 1, "own publication must be visible to its own thread");
        other.join().expect("publisher thread must not panic");
        assert_eq!(matcher.stats().published, 2, "a concurrent publication was lost");
    });
    assert!(report.complete, "stats-merge space must be exhausted, ran {report:?}");
}

/// The unserialized read–fork–swap this toy performs: both threads fork
/// the *same* parent snapshot, so one fork overwrites the other.
/// `SToPSS::mutate` holds the control mutex across fork+swap exactly to
/// rule this out; `serialize` reproduces that discipline.
fn fork_push_swap(slot: &RwLock<Arc<Vec<u32>>>, value: u32, serialize: Option<&Mutex<()>>) {
    let _control = serialize.map(|m| m.lock());
    let parent = slot.read().clone();
    let mut forked = (*parent).clone();
    forked.push(value);
    *slot.write() = Arc::new(forked);
}

/// Negative control, documenting the bug class the control mutex
/// prevents: two unserialized control mutations race, one update is
/// lost, and loom-lite both catches it and hands back a schedule that
/// replays the failure deterministically.
#[test]
fn unserialized_snapshot_swap_lost_update_caught() {
    let run = || {
        let slot = Arc::new(RwLock::new(Arc::new(Vec::new())));
        let other = {
            let slot = slot.clone();
            thread::spawn(move || fork_push_swap(&slot, 1, None))
        };
        fork_push_swap(&slot, 2, None);
        other.join().expect("forker thread must not panic");
        assert_eq!(slot.read().len(), 2, "lost update: a concurrent fork was overwritten");
    };
    let outcome = Builder::default().check_outcome(run);
    let (message, schedule) =
        outcome.failure.expect("bounded exploration must find the lost update");
    assert!(message.contains("lost update"), "unexpected failure: {message}");
    // The recorded schedule is a seed: replaying it reproduces the same
    // failure without searching. This is what a CI failure hands you.
    let replayed = replay(&schedule, run).expect("replaying the schedule must fail again");
    assert!(replayed.contains("lost update"), "replay diverged: {replayed}");
}

/// The serialized version of the same mutation — the discipline
/// `SToPSS::mutate` implements — survives exhaustive exploration.
#[test]
fn serialized_snapshot_swap_conserves_updates() {
    let report = Builder::default().check(|| {
        let slot = Arc::new(RwLock::new(Arc::new(Vec::new())));
        let control = Arc::new(Mutex::new(()));
        let other = {
            let (slot, control) = (slot.clone(), control.clone());
            thread::spawn(move || fork_push_swap(&slot, 1, Some(&control)))
        };
        fork_push_swap(&slot, 2, Some(&control));
        other.join().expect("forker thread must not panic");
        assert_eq!(slot.read().len(), 2);
    });
    assert!(report.complete, "serialized-swap space must be exhausted, ran {report:?}");
}
