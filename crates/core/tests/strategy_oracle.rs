//! Property tests: every (strategy × engine) combination of the matcher
//! must agree with the executable definition of semantic matching in
//! `stopss_core::oracle`.
//!
//! Two generators are used:
//!
//! * an *unrestricted* one (all ten operators, synonyms over taxonomy
//!   terms, arbitrary mapping wiring) — checked against the flattened
//!   closure semantics, which [`Strategy::GeneralizedEvent`] implements
//!   directly;
//! * a *constrained* one for cross-strategy equality, avoiding the two
//!   documented approximations: `Ne`/string predicates over categorical
//!   values (inexact under subscription rewriting) and mapping functions
//!   whose triggers are themselves generalizable (inexact under rewriting,
//!   binding-sensitive under materialization). Within this class all three
//!   strategies are exact, so they must agree bit-for-bit with the oracle
//!   unless a resource cap truncated the exploration — in which case the
//!   result must still be sound (a subset of the oracle's matches).

use std::sync::Arc;

use proptest::prelude::*;

use stopss_core::{semantic_match, Config, Limits, SToPSS, Strategy as MatchStrategy, Tolerance};
use stopss_matching::EngineKind;
use stopss_ontology::{Expr, Guard, MappingFunction, Ontology, PatternItem, Production};
use stopss_types::{
    Event, Interner, Operator, Predicate, SharedInterner, SubId, Subscription, Symbol, Value,
};

/// Fixed vocabulary layout (interned in this order):
/// t0..t5   taxonomy value terms
/// a0..a3   event/subscription attributes (a1 is-a a0 optionally)
/// m0..m1   mapping trigger attributes (never in taxonomy/synonyms)
/// o0..o1   mapping output attributes
/// s0..s2   value aliases (synonyms of t-terms)
/// aa0      attribute alias (synonym of a0)
const T: usize = 6;
const A: usize = 4;
const M: usize = 2;
const O: usize = 2;
const S: usize = 3;

fn base_interner() -> Interner {
    let mut i = Interner::new();
    for k in 0..T {
        i.intern(&format!("t{k}"));
    }
    for k in 0..A {
        i.intern(&format!("a{k}"));
    }
    for k in 0..M {
        i.intern(&format!("m{k}"));
    }
    for k in 0..O {
        i.intern(&format!("o{k}"));
    }
    for k in 0..S {
        i.intern(&format!("s{k}"));
    }
    i.intern("aa0");
    i
}

fn t(k: usize) -> Symbol {
    Symbol::from_index(k % T)
}
fn a(k: usize) -> Symbol {
    Symbol::from_index(T + (k % A))
}
fn m(k: usize) -> Symbol {
    Symbol::from_index(T + A + (k % M))
}
fn o(k: usize) -> Symbol {
    Symbol::from_index(T + A + M + (k % O))
}
fn s(k: usize) -> Symbol {
    Symbol::from_index(T + A + M + O + (k % S))
}
fn aa0() -> Symbol {
    Symbol::from_index(T + A + M + O + S)
}

/// Declarative ontology description that proptest can generate and shrink.
#[derive(Clone, Debug)]
struct OntologySpec {
    /// Taxonomy edges (child_idx, parent_idx) with child < parent — always
    /// acyclic.
    edges: Vec<(usize, usize)>,
    /// a1 is-a a0.
    attr_edge: bool,
    /// Alias k ↦ root term index.
    aliases: Vec<usize>,
    /// aa0 ↦ a0.
    attr_alias: bool,
    /// Mapping functions: (trigger m-idx, numeric guard threshold or None,
    /// production: either o-idx = m + c, or a-idx = const t-term).
    mappings: Vec<MappingSpec>,
}

#[derive(Clone, Debug)]
enum MappingSpec {
    /// `when m_t >= guard? emit o_out = m_t + c`
    Numeric { trigger: usize, guard: Option<i64>, out: usize, add: i64 },
    /// `when m_t exists emit a_out = t_term`
    Term { trigger: usize, out: usize, term: usize },
}

fn build_ontology(spec: &OntologySpec, interner: &Interner) -> Ontology {
    let mut ont = Ontology::new("prop");
    for &(c, p) in &spec.edges {
        if c < p {
            ont.taxonomy.add_isa(t(c), t(p), interner).unwrap();
        }
    }
    if spec.attr_edge {
        ont.taxonomy.add_isa(a(1), a(0), interner).unwrap();
    }
    for (k, root) in spec.aliases.iter().enumerate() {
        ont.synonyms.add_synonym(t(*root), s(k), interner).unwrap();
    }
    if spec.attr_alias {
        ont.synonyms.add_synonym(a(0), aa0(), interner).unwrap();
    }
    for (k, mspec) in spec.mappings.iter().enumerate() {
        let func = match *mspec {
            MappingSpec::Numeric { trigger, guard, out, add } => MappingFunction::new(
                format!("num{k}"),
                vec![PatternItem {
                    attr: m(trigger),
                    guard: guard.map(|g| Guard { op: Operator::Ge, value: Value::Int(g) }),
                }],
                vec![Production {
                    attr: o(out),
                    expr: Expr::add(Expr::Attr(m(trigger)), Expr::Const(Value::Int(add))),
                }],
            ),
            MappingSpec::Term { trigger, out, term } => MappingFunction::new(
                format!("term{k}"),
                vec![PatternItem { attr: m(trigger), guard: None }],
                vec![Production { attr: a(out), expr: Expr::Const(Value::Sym(t(term))) }],
            ),
        };
        ont.mappings.register(func).unwrap();
    }
    ont
}

fn arb_spec() -> impl Strategy<Value = OntologySpec> {
    let edges = proptest::collection::vec((0usize..T - 1, 0usize..T), 0..6).prop_map(|raw| {
        raw.into_iter()
            .filter_map(|(c, p)| {
                let p = c + 1 + (p % (T - c - 1).max(1));
                (p < T).then_some((c, p))
            })
            .collect::<Vec<_>>()
    });
    (
        edges,
        any::<bool>(),
        proptest::collection::vec(0usize..T, 0..S),
        any::<bool>(),
        proptest::collection::vec(arb_mapping_spec(), 0..3),
    )
        .prop_map(|(edges, attr_edge, aliases, attr_alias, mappings)| OntologySpec {
            edges,
            attr_edge,
            aliases,
            attr_alias,
            mappings,
        })
}

fn arb_mapping_spec() -> impl Strategy<Value = MappingSpec> {
    prop_oneof![
        (0usize..M, proptest::option::of(-3i64..3), 0usize..O, -2i64..3).prop_map(
            |(trigger, guard, out, add)| MappingSpec::Numeric { trigger, guard, out, add }
        ),
        (0usize..M, 2usize..A, 0usize..T).prop_map(|(trigger, out, term)| MappingSpec::Term {
            trigger,
            out,
            term
        }),
    ]
}

/// Attribute choices for events/subscriptions; includes aliases.
fn arb_attr() -> impl Strategy<Value = Symbol> {
    prop_oneof![
        (0usize..A).prop_map(a),
        (0usize..M).prop_map(m),
        (0usize..O).prop_map(o),
        Just(aa0()),
    ]
}

fn arb_term_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0usize..T).prop_map(|k| Value::Sym(t(k))),
        (0usize..S).prop_map(|k| Value::Sym(s(k))),
        (-4i64..6).prop_map(Value::Int),
    ]
}

fn arb_event() -> impl Strategy<Value = Event> {
    proptest::collection::vec((arb_attr(), arb_term_value()), 1..4)
        .prop_map(|pairs| pairs.into_iter().collect())
}

/// Constrained predicate set: Eq, numeric ranges, Exists — exact under all
/// three strategies.
fn arb_constrained_predicate() -> impl Strategy<Value = Predicate> {
    (arb_attr(), 0usize..4, arb_term_value()).prop_map(|(attr, op_pick, value)| match op_pick {
        0 => Predicate::new(attr, Operator::Eq, value),
        1 => Predicate::new(attr, Operator::Ge, Value::Int(value.as_int().unwrap_or(0))),
        2 => Predicate::new(attr, Operator::Lt, Value::Int(value.as_int().unwrap_or(0) + 2)),
        _ => Predicate::exists(attr),
    })
}

/// Unrestricted predicates: all ten operators.
fn arb_any_predicate() -> impl Strategy<Value = Predicate> {
    (arb_attr(), 0usize..10usize, arb_term_value()).prop_map(|(attr, op_pick, value)| {
        let op = Operator::ALL[op_pick];
        Predicate::new(attr, op, value)
    })
}

fn subs_from(preds: Vec<Vec<Predicate>>) -> Vec<Subscription> {
    preds
        .into_iter()
        .enumerate()
        .map(|(k, p)| Subscription::new(SubId(1000 + k as u64), p))
        .collect()
}

fn oracle_matches(
    subs: &[Subscription],
    event: &Event,
    ont: &Ontology,
    tolerance: &Tolerance,
    interner: &Interner,
    limits: &stopss_core::ClosureLimits,
) -> Vec<SubId> {
    let mut out: Vec<SubId> = subs
        .iter()
        .filter(|sub| semantic_match(sub, event, ont, tolerance, 2003, interner, limits))
        .map(|s| s.id())
        .collect();
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The flattened-closure strategy is the semantics definition; every
    /// engine must implement it exactly, for arbitrary operators.
    #[test]
    fn generalized_equals_oracle_on_unrestricted_workloads(
        spec in arb_spec(),
        preds in proptest::collection::vec(proptest::collection::vec(arb_any_predicate(), 0..4), 1..10),
        events in proptest::collection::vec(arb_event(), 1..5),
        bounded in proptest::option::of(0u32..3),
    ) {
        let interner = base_interner();
        let ont = build_ontology(&spec, &interner);
        let subs = subs_from(preds);
        let tolerance = Tolerance { stages: stopss_core::StageMask::all(), max_distance: bounded };
        let source = Arc::new(ont);

        for engine in EngineKind::ALL {
            let config = Config {
                engine,
                strategy: MatchStrategy::GeneralizedEvent,
                stages: tolerance.stages,
                max_distance: tolerance.max_distance,
                track_provenance: false,
                ..Config::default()
            };
            let matcher = SToPSS::new(
                config,
                source.clone(),
                SharedInterner::from_interner(interner.clone()),
            );
            for sub in &subs {
                matcher.subscribe(sub.clone());
            }
            for event in &events {
                let result = matcher.publish_detailed(event);
                prop_assert!(!result.truncated, "defaults must not truncate tiny workloads");
                let mut got: Vec<SubId> = result.matches.iter().map(|m| m.sub).collect();
                got.sort_unstable();
                let want = oracle_matches(
                    &subs, event, &source, &tolerance, &interner, &config.limits.closure,
                );
                prop_assert_eq!(&got, &want, "engine {} diverged from oracle", engine.name());
            }
        }
    }

    /// On the constrained workload class all three strategies are exact.
    #[test]
    fn all_strategies_agree_on_constrained_workloads(
        spec in arb_spec(),
        preds in proptest::collection::vec(proptest::collection::vec(arb_constrained_predicate(), 0..4), 1..8),
        events in proptest::collection::vec(arb_event(), 1..4),
        bounded in proptest::option::of(0u32..3),
    ) {
        let interner = base_interner();
        let ont = build_ontology(&spec, &interner);
        let subs = subs_from(preds);
        let tolerance = Tolerance { stages: stopss_core::StageMask::all(), max_distance: bounded };
        let source = Arc::new(ont);
        let limits = Limits { max_derived_events: 1 << 14, ..Limits::default() };

        for strategy in MatchStrategy::ALL {
            // One engine per strategy suffices here; engine equivalence is
            // covered by the unrestricted test and the matching crate.
            let engine = match strategy {
                MatchStrategy::MaterializeEvents => EngineKind::Counting,
                MatchStrategy::GeneralizedEvent => EngineKind::Trie,
                MatchStrategy::SubscriptionRewrite => EngineKind::Cluster,
            };
            let config = Config {
                engine,
                strategy,
                stages: tolerance.stages,
                max_distance: tolerance.max_distance,
                limits,
                track_provenance: false,
                ..Config::default()
            };
            let matcher = SToPSS::new(
                config,
                source.clone(),
                SharedInterner::from_interner(interner.clone()),
            );
            for sub in &subs {
                matcher.subscribe(sub.clone());
            }
            prop_assert_eq!(matcher.stats().rewrite_truncations, 0);
            for event in &events {
                let result = matcher.publish_detailed(event);
                let mut got: Vec<SubId> = result.matches.iter().map(|m| m.sub).collect();
                got.sort_unstable();
                let want = oracle_matches(
                    &subs, event, &source, &tolerance, &interner, &config.limits.closure,
                );
                if result.truncated {
                    // Bounded exploration must stay sound.
                    prop_assert!(
                        got.iter().all(|id| want.contains(id)),
                        "strategy {} unsound under truncation", strategy.name()
                    );
                } else {
                    prop_assert_eq!(
                        &got, &want,
                        "strategy {} diverged from oracle", strategy.name()
                    );
                }
            }
        }
    }

    /// Aggressive truncation must never produce false matches.
    #[test]
    fn materialization_is_sound_under_tiny_budgets(
        spec in arb_spec(),
        preds in proptest::collection::vec(proptest::collection::vec(arb_constrained_predicate(), 0..4), 1..6),
        event in arb_event(),
        budget in 1usize..8,
    ) {
        let interner = base_interner();
        let ont = build_ontology(&spec, &interner);
        let subs = subs_from(preds);
        let source = Arc::new(ont);
        let config = Config {
            strategy: MatchStrategy::MaterializeEvents,
            limits: Limits { max_derived_events: budget, ..Limits::default() },
            track_provenance: false,
            ..Config::default()
        };
        let matcher = SToPSS::new(
            config,
            source.clone(),
            SharedInterner::from_interner(interner.clone()),
        );
        for sub in &subs {
            matcher.subscribe(sub.clone());
        }
        let got = matcher.publish(&event);
        let want = oracle_matches(
            &subs, &event, &source, &Tolerance::full(), &interner, &config.limits.closure,
        );
        for m in &got {
            prop_assert!(want.contains(&m.sub), "false match under truncation");
        }
    }
}
