//! Property test: every generated scenario — all four domains, optionally
//! pre-churned — round-trips through [`Fixture`] with identical match
//! sets and matcher stats across shard counts {1, 4} and both batch
//! paths (the pipelined `publish_batch` and the explicit
//! prepare-then-match barrier). The sharding/pipelining machinery must be
//! invisible to every workload shape, not just the jobfinder the existing
//! differential covers.

use proptest::prelude::*;

use stopss_core::{Config, Match, MatcherStats};
use stopss_workload::{
    churn_scenario, geo_fixture, iot_fixture, jobfinder_fixture, market_fixture,
    replay_interleaved, replay_interleaved_sharded, replay_sequential, ChurnMode, Fixture,
};

fn fixture_for(domain: usize, seed: u64) -> (&'static str, Fixture) {
    match domain {
        0 => ("jobfinder", jobfinder_fixture(25, 20, seed)),
        1 => ("iot", iot_fixture(25, 20, seed)),
        2 => ("market", market_fixture(25, 20, seed)),
        _ => ("geo", geo_fixture(25, 20, seed)),
    }
}

/// Match sets + final stats for one (shards, batch path) combination.
fn run(fixture: &Fixture, shards: usize, barrier: bool) -> (Vec<Vec<Match>>, MatcherStats) {
    // `with_parallelism(shards)` keeps the pipelined path's stage overlap
    // on even when the host reports few cores.
    let config = Config::default().with_shards(shards).with_parallelism(shards);
    let matcher = fixture.sharded_matcher(config);
    let matches = if barrier {
        let prepared = matcher.frontend().prepare_batch(&fixture.publications);
        matcher.publish_prepared_batch(&prepared).into_iter().map(|r| r.matches).collect()
    } else {
        matcher.publish_batch(&fixture.publications)
    };
    (matches, matcher.stats())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// All domains: sharded {1,4} × pipelined/barrier agree on matches
    /// and stats.
    #[test]
    fn every_domain_is_shard_and_path_invariant(
        domain in 0usize..4,
        seed in 0u64..500,
    ) {
        let (name, fixture) = fixture_for(domain, seed);
        let (want_matches, want_stats) = run(&fixture, 1, false);
        for shards in [1usize, 4] {
            for barrier in [false, true] {
                let (matches, stats) = run(&fixture, shards, barrier);
                prop_assert_eq!(
                    &matches, &want_matches,
                    "{}: match sets diverged (shards {}, barrier {})", name, shards, barrier
                );
                prop_assert_eq!(
                    stats, want_stats,
                    "{}: stats diverged (shards {}, barrier {})", name, shards, barrier
                );
            }
        }
    }

    /// All domains × churn modes: the interleaved replay matches the
    /// fresh-matcher oracle on both backends.
    #[test]
    fn every_domain_survives_churn(
        domain in 0usize..4,
        mode in 0usize..2,
        seed in 0u64..500,
    ) {
        let (name, fixture) = fixture_for(domain, seed);
        let mode = if mode == 0 { ChurnMode::UnsubscribeHeavy } else { ChurnMode::FlashCrowd };
        let scenario = churn_scenario(&fixture, mode, 60, seed ^ 0xC0FFEE);
        let config = Config::default();
        let sequential = replay_sequential(&fixture, &scenario, config);
        let interleaved = replay_interleaved(&fixture, &scenario, config);
        prop_assert_eq!(&interleaved, &sequential, "{}/{:?}: single backend diverged", name, mode);
        let sharded = replay_interleaved_sharded(&fixture, &scenario, config.with_shards(4));
        prop_assert_eq!(&sharded, &sequential, "{}/{:?}: sharded backend diverged", name, mode);
    }
}
