//! Result tables.
//!
//! The experiments binary regenerates every table in `EXPERIMENTS.md`;
//! this module renders them as aligned text (for the terminal), GitHub
//! markdown (for the document), and CSV (for downstream plotting) without
//! pulling in a serialization framework.

use std::fmt::Write as _;

/// A simple rectangular results table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table {
    /// Table caption (experiment id and description).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows; each must have `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the cell count does not match the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch in '{}'", self.title);
        self.rows.push(cells);
    }

    /// Renders as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        writeln!(out, "**{}**", self.title).unwrap();
        writeln!(out).unwrap();
        writeln!(out, "| {} |", self.headers.join(" | ")).unwrap();
        writeln!(out, "|{}|", self.headers.iter().map(|_| "---").collect::<Vec<_>>().join("|"))
            .unwrap();
        for row in &self.rows {
            writeln!(out, "| {} |", row.join(" | ")).unwrap();
        }
        out
    }

    /// Renders as CSV (header row first).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        writeln!(out, "{}", self.headers.iter().map(|h| escape(h)).collect::<Vec<_>>().join(","))
            .unwrap();
        for row in &self.rows {
            writeln!(out, "{}", row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","))
                .unwrap();
        }
        out
    }

    /// Renders as column-aligned text for terminals.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (k, cell) in row.iter().enumerate() {
                widths[k] = widths[k].max(cell.len());
            }
        }
        let mut out = String::new();
        writeln!(out, "== {} ==", self.title).unwrap();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(k, c)| format!("{:<width$}", c, width = widths[k]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(out, "{}", fmt_row(&self.headers, &widths)).unwrap();
        writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)))
            .unwrap();
        for row in &self.rows {
            writeln!(out, "{}", fmt_row(row, &widths)).unwrap();
        }
        out
    }
}

/// Formats a float with sensible precision for reports.
pub fn fmt_f64(x: f64) -> String {
    if x == 0.0 {
        "0".to_owned()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

/// Formats a ratio as `12.3x`.
pub fn fmt_ratio(x: f64) -> String {
    format!("{}x", fmt_f64(x))
}

/// Formats nanoseconds human-readably.
pub fn fmt_nanos(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2}us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2}ms", ns / 1_000_000.0)
    } else {
        format!("{:.2}s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("E0 sample", &["mode", "matches"]);
        t.push_row(vec!["syntactic".into(), "10".into()]);
        t.push_row(vec!["semantic".into(), "25".into()]);
        t
    }

    #[test]
    fn markdown_has_header_separator_and_rows() {
        let md = sample().to_markdown();
        assert!(md.contains("**E0 sample**"));
        assert!(md.contains("| mode | matches |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| semantic | 25 |"));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1,2".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"1,2\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn text_is_aligned() {
        let text = sample().to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[1].starts_with("mode"));
        assert!(lines[3].starts_with("syntactic"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(1234.5), "1234");
        assert_eq!(fmt_f64(1234.6), "1235");
        assert_eq!(fmt_f64(3.25159), "3.25");
        assert_eq!(fmt_f64(0.01234), "0.0123");
        assert_eq!(fmt_ratio(2.5), "2.50x");
        assert_eq!(fmt_nanos(512.0), "512ns");
        assert_eq!(fmt_nanos(2_500.0), "2.50us");
        assert_eq!(fmt_nanos(3_000_000.0), "3.00ms");
        assert_eq!(fmt_nanos(1_500_000_000.0), "1.50s");
    }
}
