//! # stopss-workload
//!
//! Workload generation and experiment fixtures for the S-ToPSS
//! reproduction — the "workload generator" box of the paper's Figure 2,
//! plus the synthetic domains the scaling experiments sweep.
//!
//! * [`rng`] / [`zipf`] — deterministic randomness (hand-rolled PCG32 so
//!   experiment streams never change underneath us);
//! * [`jobfinder`] — the paper's demo domain, compiled from `.sto` text;
//! * [`generator`] — recruiter-subscription / resume-publication
//!   generators;
//! * [`taxonomy_gen`] — parameterized synthetic ontologies (depth ×
//!   fanout sweeps);
//! * [`scenario`] — ready-made fixtures for every experiment;
//! * [`report`] — text/markdown/CSV result tables.

#![warn(missing_docs)]

pub mod generator;
pub mod jobfinder;
pub mod report;
pub mod rng;
pub mod scenario;
pub mod taxonomy_gen;
pub mod zipf;

pub use generator::{generate_jobfinder, Workload, WorkloadConfig};
pub use jobfinder::{JobFinderDomain, JOBFINDER_STO};
pub use report::{fmt_f64, fmt_nanos, fmt_ratio, Table};
pub use rng::{Rng, SplitMix64};
pub use scenario::{
    chain_subscription, jobfinder_fixture, jobfinder_fixture_with, synthetic_fixture, Fixture,
    SyntheticWorkload,
};
pub use taxonomy_gen::{build_synthetic, SyntheticConfig, SyntheticDomain};
pub use zipf::Zipf;
