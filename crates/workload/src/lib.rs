//! # stopss-workload
//!
//! Workload generation and experiment fixtures for the S-ToPSS
//! reproduction — the "workload generator" box of the paper's Figure 2,
//! plus the synthetic domains the scaling experiments sweep.
//!
//! * [`rng`] / [`zipf`] — deterministic randomness (hand-rolled PCG32 so
//!   experiment streams never change underneath us);
//! * [`jobfinder`] — the paper's demo domain, compiled from `.sto` text;
//! * [`iot`] — IoT/telemetry domain: shallow taxonomies, huge event
//!   rates, a Fahrenheit→Celsius mapping bridging publisher conventions;
//! * [`market`] — market-data domain: numeric-tolerance-heavy predicates
//!   with Zipf hot-key ticker skew and a chained block-trade classifier;
//! * [`geo`] — geo/alerting domain: five-level place hierarchy and a
//!   six-rule mapping pipeline (including a transitive red-alert chain);
//! * [`generator`] — recruiter-subscription / resume-publication
//!   generators;
//! * [`taxonomy_gen`] — parameterized synthetic ontologies (depth ×
//!   fanout sweeps);
//! * [`scenario`] — ready-made fixtures for every experiment;
//! * [`churn`] — subscribe/unsubscribe-dominated op streams with
//!   interleaved-vs-sequential differential replay;
//! * [`report`] — text/markdown/CSV result tables.

#![warn(missing_docs)]

pub mod churn;
pub mod generator;
pub mod geo;
pub mod iot;
pub mod jobfinder;
pub mod market;
pub mod report;
pub mod rng;
pub mod scenario;
pub mod taxonomy_gen;
pub mod zipf;

pub use churn::{
    churn_scenario, replay_concurrent, replay_concurrent_sharded, replay_interleaved,
    replay_interleaved_sharded, replay_sequential, ChurnMode, ChurnOp, ChurnScenario,
    ConcurrentChurnSummary,
};
pub use generator::{generate_jobfinder, Workload, WorkloadConfig};
pub use geo::{generate_geo, GeoDomain, GeoWorkloadConfig, GEO_STO};
pub use iot::{generate_iot, IotDomain, IotWorkloadConfig, IOT_STO};
pub use jobfinder::{JobFinderDomain, JOBFINDER_STO};
pub use market::{generate_market, MarketDomain, MarketWorkloadConfig, MARKET_STO};
pub use report::{fmt_f64, fmt_nanos, fmt_ratio, Table};
pub use rng::{Rng, SplitMix64};
pub use scenario::{
    chain_subscription, geo_fixture, iot_fixture, jobfinder_fixture, jobfinder_fixture_with,
    market_fixture, synthetic_fixture, Fixture, SyntheticWorkload,
};
pub use taxonomy_gen::{build_synthetic, SyntheticConfig, SyntheticDomain};
pub use zipf::Zipf;
