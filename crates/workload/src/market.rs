//! Market-data scenario domain.
//!
//! A numeric-heavy corner of the workload space: most predicates are
//! range constraints over prices, volumes and basis-point moves, and
//! interest concentrates on a few hot ticker symbols — drawn Zipf-skewed
//! on both the subscription and the publication side, so the same heads
//! dominate both populations (the classic hot-key profile of market
//! feeds). The sector taxonomy is modest; the semantic load sits in the
//! synonym layer (`ticker`/`symbol`, `last`/`price`, `vol`/`volume`) and
//! in a *chained* mapping pipeline: price × volume derives the notional,
//! and the notional in turn classifies block trades.

use stopss_ontology::{parse_ontology, Ontology};
use stopss_types::{Event, Interner, Operator, Predicate, SubId, Subscription, Symbol, Value};

use crate::rng::Rng;
use crate::zipf::Zipf;

/// The market ontology in `.sto` source form.
pub const MARKET_STO: &str = r#"
domain market

# ------------------------------------------------------------------ synonyms
synonyms symbol = ticker
synonyms price = last, quote
synonyms volume = vol
synonyms sector = industry

# -------------------------------------------------- sector taxonomy
isa software -> technology -> sector_any
isa semiconductors -> technology
isa internet -> technology
isa banks -> financials -> sector_any
isa insurance -> financials
isa oil_gas -> energy -> sector_any
isa renewables -> energy

# --------------------------------------------------------- mapping functions
map notional_value:
    when price exists
    when volume exists
    emit notional = price * volume
end

map block_trade_flag:
    when notional >= 1000000
    emit trade_class = term(block_trade)
end

map swing_alert:
    when move_bps >= 500
    emit trade_class = term(volatile)
end
"#;

/// The compiled market domain with symbol handles for generators.
#[derive(Debug, Clone)]
pub struct MarketDomain {
    /// The compiled ontology.
    pub ontology: Ontology,
    /// Root attribute `symbol` (alias: ticker).
    pub attr_symbol: Symbol,
    /// Alias attribute `ticker`.
    pub attr_ticker: Symbol,
    /// Root attribute `price` (aliases: last, quote).
    pub attr_price: Symbol,
    /// Alias attribute `last`.
    pub attr_last: Symbol,
    /// Root attribute `volume` (alias: vol).
    pub attr_volume: Symbol,
    /// Root attribute `sector` (alias: industry).
    pub attr_sector: Symbol,
    /// Attribute `move_bps` (signed basis-point move, mapping trigger).
    pub attr_move_bps: Symbol,
    /// Attribute `notional` (derived by the first mapping link).
    pub attr_notional: Symbol,
    /// Attribute `trade_class` (derived by the second mapping link).
    pub attr_trade_class: Symbol,
    /// Term `block_trade`.
    pub term_block_trade: Symbol,
    /// Term `volatile`.
    pub term_volatile: Symbol,
    /// Flat ticker pool, hot-key skewed by the generators.
    pub tickers: Vec<Symbol>,
    /// Leaf sector terms.
    pub sector_leaves: Vec<Symbol>,
    /// Non-leaf sector terms.
    pub sector_generals: Vec<Symbol>,
}

impl MarketDomain {
    /// Compiles the domain into `interner`.
    pub fn build(interner: &mut Interner) -> Self {
        let ontology = parse_ontology(MARKET_STO, interner).expect("embedded ontology must parse");
        let tickers = [
            "acme",
            "globex",
            "initech",
            "umbrella",
            "stark",
            "wayne",
            "tyrell",
            "cyberdyne",
            "wonka",
            "oceanic",
            "hooli",
            "piedpiper",
        ]
        .iter()
        .map(|t| interner.intern(t))
        .collect();

        let sym = |i: &Interner, name: &str| {
            i.get(name).unwrap_or_else(|| panic!("ontology must define '{name}'"))
        };
        let root = sym(interner, "sector_any");
        let mut sector_leaves = Vec::new();
        let mut sector_generals = vec![root];
        for (concept, _) in ontology.taxonomy.descendants(root) {
            if ontology.taxonomy.children(concept).is_empty() {
                sector_leaves.push(concept);
            } else {
                sector_generals.push(concept);
            }
        }
        sector_leaves.sort_unstable();
        sector_generals.sort_unstable();

        MarketDomain {
            attr_symbol: sym(interner, "symbol"),
            attr_ticker: sym(interner, "ticker"),
            attr_price: sym(interner, "price"),
            attr_last: sym(interner, "last"),
            attr_volume: sym(interner, "volume"),
            attr_sector: sym(interner, "sector"),
            attr_move_bps: sym(interner, "move_bps"),
            attr_notional: sym(interner, "notional"),
            attr_trade_class: sym(interner, "trade_class"),
            term_block_trade: sym(interner, "block_trade"),
            term_volatile: sym(interner, "volatile"),
            tickers,
            sector_leaves,
            sector_generals,
            ontology,
        }
    }
}

/// Knobs for the market workload.
#[derive(Clone, Copy, Debug)]
pub struct MarketWorkloadConfig {
    /// Number of standing orders/alerts (subscriptions).
    pub subscriptions: usize,
    /// Number of quote/trade events (publications).
    pub publications: usize,
    /// RNG seed; equal seeds give identical workloads.
    pub seed: u64,
    /// Zipf exponent over the ticker pool (both sides of the workload).
    pub zipf_skew: f64,
    /// Probability a subscription uses a *general* sector term.
    pub general_term_bias: f64,
    /// Probability a publication spells an attribute with a synonym alias
    /// (`ticker` for `symbol`, `last` for `price`).
    pub alias_bias: f64,
}

impl Default for MarketWorkloadConfig {
    fn default() -> Self {
        MarketWorkloadConfig {
            subscriptions: 500,
            publications: 1_000,
            seed: 2003,
            zipf_skew: 1.1,
            general_term_bias: 0.5,
            alias_bias: 0.4,
        }
    }
}

/// Generates a market workload. Deterministic in `config.seed`.
pub fn generate_market(domain: &MarketDomain, config: &MarketWorkloadConfig) -> crate::Workload {
    let mut rng = Rng::new(config.seed);
    let mut sub_rng = rng.fork(1);
    let mut pub_rng = rng.fork(2);
    let subscriptions = (0..config.subscriptions)
        .map(|k| market_subscription(domain, config, &mut sub_rng, SubId(k as u64)))
        .collect();
    let publications = (0..config.publications)
        .map(|_| market_publication(domain, config, &mut pub_rng))
        .collect();
    crate::Workload { subscriptions, publications }
}

/// One standing order: 1..=3 predicates, numeric-heavy (only three of
/// the seven templates are categorical, the rest range constraints).
fn market_subscription(
    domain: &MarketDomain,
    config: &MarketWorkloadConfig,
    rng: &mut Rng,
    id: SubId,
) -> Subscription {
    let zipf = Zipf::new(domain.tickers.len(), config.zipf_skew);
    let n_preds = 1 + rng.index(3);
    let mut templates: Vec<usize> = (0..7).collect();
    rng.shuffle(&mut templates);
    let mut preds = Vec::with_capacity(n_preds);
    for template in templates.into_iter().take(n_preds) {
        let pred = match template {
            0 => Predicate::eq(domain.attr_symbol, domain.tickers[zipf.sample(rng)]),
            1 => {
                let pool = if rng.chance(config.general_term_bias) {
                    &domain.sector_generals
                } else {
                    &domain.sector_leaves
                };
                Predicate::eq(domain.attr_sector, *rng.pick(pool))
            }
            2 => {
                let op = if rng.chance(0.5) { Operator::Ge } else { Operator::Le };
                Predicate::new(domain.attr_price, op, Value::Int(rng.range_i64(1, 40) * 25))
            }
            3 => Predicate::new(
                domain.attr_volume,
                Operator::Ge,
                Value::Int(rng.range_i64(1, 20) * 500),
            ),
            4 => Predicate::new(
                domain.attr_move_bps,
                if rng.chance(0.5) { Operator::Ge } else { Operator::Le },
                Value::Int(rng.range_i64(-6, 7) * 100),
            ),
            5 => Predicate::new(
                // Derived by the notional_value mapping — numeric over a
                // synthesized attribute.
                domain.attr_notional,
                Operator::Ge,
                Value::Int(rng.range_i64(1, 20) * 100_000),
            ),
            _ => {
                let class =
                    if rng.chance(0.5) { domain.term_block_trade } else { domain.term_volatile };
                Predicate::eq(domain.attr_trade_class, class)
            }
        };
        preds.push(pred);
    }
    Subscription::new(id, preds)
}

/// One quote/trade: a hot-key ticker, sector, price, volume and move.
fn market_publication(
    domain: &MarketDomain,
    config: &MarketWorkloadConfig,
    rng: &mut Rng,
) -> Event {
    let zipf = Zipf::new(domain.tickers.len(), config.zipf_skew);
    let mut event = Event::with_capacity(5);
    let symbol_attr =
        if rng.chance(config.alias_bias) { domain.attr_ticker } else { domain.attr_symbol };
    event.push(symbol_attr, Value::Sym(domain.tickers[zipf.sample(rng)]));
    event.push(domain.attr_sector, Value::Sym(*rng.pick(&domain.sector_leaves)));
    let price_attr =
        if rng.chance(config.alias_bias) { domain.attr_last } else { domain.attr_price };
    event.push(price_attr, Value::Int(rng.range_i64(1, 1_000)));
    event.push(domain.attr_volume, Value::Int(rng.range_i64(1, 40) * 250));
    event.push(domain.attr_move_bps, Value::Int(rng.range_i64(-800, 801)));
    event
}

#[cfg(test)]
mod tests {
    use super::*;
    use stopss_ontology::SemanticSource;

    fn domain() -> (Interner, MarketDomain) {
        let mut i = Interner::new();
        let d = MarketDomain::build(&mut i);
        (i, d)
    }

    #[test]
    fn chained_mappings_classify_block_trades() {
        let (i, d) = domain();
        // price 2000 x volume 600 = notional 1_200_000 >= 1_000_000.
        let event =
            Event::new().with(d.attr_price, Value::Int(2_000)).with(d.attr_volume, Value::Int(600));
        let mut produced = Vec::new();
        d.ontology.apply_mappings(&event, &i, 2003, &mut |name, pairs| {
            produced.push((name.to_owned(), pairs));
        });
        // Only the first link fires directly on the raw event; the chain
        // to `block_trade` is closed by the matcher's derivation loop.
        assert_eq!(produced.len(), 1);
        assert_eq!(produced[0].0, "notional_value");
        assert_eq!(produced[0].1, vec![(d.attr_notional, Value::Int(1_200_000))]);
        // The second link fires on the derived notional.
        let derived = Event::new().with(d.attr_notional, Value::Int(1_200_000));
        let mut fired = Vec::new();
        d.ontology.apply_mappings(&derived, &i, 2003, &mut |name, _| fired.push(name.to_owned()));
        assert_eq!(fired, vec!["block_trade_flag".to_owned()]);
    }

    #[test]
    fn synonyms_resolve_to_roots() {
        let (_, d) = domain();
        assert_eq!(d.ontology.resolve_synonym(d.attr_ticker), d.attr_symbol);
        assert_eq!(d.ontology.resolve_synonym(d.attr_last), d.attr_price);
    }

    #[test]
    fn generation_is_deterministic_and_numeric_heavy() {
        let (_, d) = domain();
        let config = MarketWorkloadConfig { subscriptions: 300, ..Default::default() };
        let w1 = generate_market(&d, &config);
        let w2 = generate_market(&d, &config);
        assert_eq!(w1.subscriptions, w2.subscriptions);
        assert_eq!(w1.publications, w2.publications);
        let numeric_preds: usize = w1
            .subscriptions
            .iter()
            .flat_map(|s| s.predicates())
            .filter(|p| matches!(p.value, Value::Int(_)))
            .count();
        let total_preds: usize = w1.subscriptions.iter().map(|s| s.len()).sum();
        assert!(
            numeric_preds * 2 > total_preds,
            "market subscriptions are numeric-heavy: {numeric_preds}/{total_preds}"
        );
    }

    #[test]
    fn zipf_concentrates_hot_tickers_on_both_sides() {
        let (_, d) = domain();
        let config = MarketWorkloadConfig {
            subscriptions: 1_000,
            publications: 1_000,
            zipf_skew: 1.2,
            alias_bias: 0.0,
            ..Default::default()
        };
        let w = generate_market(&d, &config);
        let count_hot = |sym_attr: Symbol, events: bool| -> (usize, usize) {
            let mut counts = vec![0usize; d.tickers.len()];
            if events {
                for e in &w.publications {
                    if let Some(Value::Sym(t)) = e.get(sym_attr) {
                        if let Some(pos) = d.tickers.iter().position(|x| x == t) {
                            counts[pos] += 1;
                        }
                    }
                }
            } else {
                for s in &w.subscriptions {
                    for p in s.predicates() {
                        if p.attr == sym_attr {
                            if let Value::Sym(t) = p.value {
                                if let Some(pos) = d.tickers.iter().position(|x| *x == t) {
                                    counts[pos] += 1;
                                }
                            }
                        }
                    }
                }
            }
            (*counts.iter().max().unwrap(), counts.iter().sum())
        };
        let (max_pub, total_pub) = count_hot(d.attr_symbol, true);
        assert!(max_pub * 4 > total_pub, "hot key dominates publications: {max_pub}/{total_pub}");
        let (max_sub, total_sub) = count_hot(d.attr_symbol, false);
        assert!(max_sub * 4 > total_sub, "hot key dominates subscriptions: {max_sub}/{total_sub}");
    }
}
