//! The paper's demonstration domain: the job-finder application (§4).
//!
//! "Companies send subscriptions that specify qualifications they are
//! looking for from prospective candidates. On the other hand, candidates
//! send their qualifications as a publication."
//!
//! The domain knowledge is written in the `.sto` ontology format and
//! compiled through `stopss_ontology::parse_ontology` — the same path an
//! operator would use — and covers all three semantic stages:
//! synonym groups (university/school/college), concept hierarchies over
//! degrees, skills, locations and positions, and the paper's two flagship
//! mapping functions (professional experience from graduation year, and
//! the §1 "mainframe developer ⇠ COBOL + 1960-1980" inference).

use stopss_ontology::{parse_ontology, Ontology};
use stopss_types::{Interner, Symbol};

/// The job-finder ontology in `.sto` source form.
pub const JOBFINDER_STO: &str = r#"
domain jobs

# ------------------------------------------------------------------ synonyms
synonyms university = school, college, institution
synonyms "professional experience" = "work experience", experience
synonyms position = job, role, occupation
synonyms salary = pay, wage
synonyms skill = expertise, competency
synonyms degree = qualification

# ------------------------------------------------------------------ degrees
isa doctoral_degree -> graduate_degree -> degree
isa phd -> doctoral_degree
isa masters_degree -> graduate_degree
isa msc -> masters_degree
isa mba -> masters_degree
isa meng -> masters_degree
isa undergraduate_degree -> degree
isa bsc -> undergraduate_degree
isa ba -> undergraduate_degree
isa beng -> undergraduate_degree
isa diploma -> degree

# ------------------------------------------------------------------- skills
isa programming -> skill
isa systems_programming -> programming
isa c -> systems_programming
isa cpp -> systems_programming
isa rust -> systems_programming
isa assembly -> systems_programming
isa web_programming -> programming
isa javascript -> web_programming
isa typescript -> web_programming
isa php -> web_programming
isa jvm_programming -> programming
isa java -> jvm_programming
isa scala -> jvm_programming
isa kotlin -> jvm_programming
isa legacy_programming -> programming
isa cobol -> legacy_programming
isa fortran -> legacy_programming
isa pl1 -> legacy_programming
isa databases -> skill
isa sql -> databases
isa nosql -> databases
isa query_optimization -> databases
isa networking -> skill
isa tcpip -> networking
isa routing -> networking
isa management -> skill
isa project_management -> management
isa people_management -> management

# ---------------------------------------------------------------- locations
isa canada -> location
isa toronto -> canada
isa montreal -> canada
isa vancouver -> canada
isa waterloo -> canada
isa germany -> location
isa berlin -> germany
isa munich -> germany
isa usa -> location
isa new_york -> usa
isa seattle -> usa
isa austin -> usa

# ---------------------------------------------------------------- positions
isa engineer -> position
isa software_engineer -> engineer
isa backend_engineer -> software_engineer
isa frontend_engineer -> software_engineer
isa hardware_engineer -> engineer
isa developer -> position
isa mainframe_developer -> developer
isa web_developer -> developer
isa manager -> position
isa engineering_manager -> manager
isa product_manager -> manager

# --------------------------------------------------- attribute relationships
isa salary -> compensation
isa bonus -> compensation

# --------------------------------------------------------- mapping functions
map experience_from_graduation:
    when "graduation year" exists
    emit "professional experience" = now - "graduation year"
end

map mainframe_inference:
    when skill = cobol
    when "first programming year" >= 1960
    when "first programming year" <= 1980
    emit position = term(mainframe_developer)
end

map annualize_salary:
    when monthly_salary exists
    emit salary = monthly_salary * 12
end

map seniority_from_experience:
    when "professional experience" >= 8
    emit level = term(senior)
end
"#;

/// The compiled job-finder domain with symbol handles for generators.
#[derive(Debug, Clone)]
pub struct JobFinderDomain {
    /// The compiled ontology.
    pub ontology: Ontology,
    /// Root attribute `university` (aliases: school, college, institution).
    pub attr_university: Symbol,
    /// Alias attribute `school` — publishers in the demo use it.
    pub attr_school: Symbol,
    /// Attribute `degree`.
    pub attr_degree: Symbol,
    /// Attribute `skill`.
    pub attr_skill: Symbol,
    /// Root attribute `professional experience`.
    pub attr_experience: Symbol,
    /// Attribute `graduation year` (mapping trigger).
    pub attr_graduation_year: Symbol,
    /// Attribute `salary`.
    pub attr_salary: Symbol,
    /// Generalized attribute `compensation` (salary is-a compensation).
    pub attr_compensation: Symbol,
    /// Attribute `monthly_salary` (mapping trigger).
    pub attr_monthly_salary: Symbol,
    /// Attribute `city`.
    pub attr_city: Symbol,
    /// Attribute `position`.
    pub attr_position: Symbol,
    /// Attribute `first programming year` (mainframe inference trigger).
    pub attr_first_year: Symbol,
    /// Attribute `level` (produced by the seniority mapping).
    pub attr_level: Symbol,
    /// Flat value pool: universities (no taxonomy; matched via synonyms).
    pub universities: Vec<Symbol>,
    /// Leaf degree terms (what candidates publish).
    pub degree_leaves: Vec<Symbol>,
    /// Non-leaf degree terms (what recruiters subscribe with).
    pub degree_generals: Vec<Symbol>,
    /// Leaf skill terms.
    pub skill_leaves: Vec<Symbol>,
    /// Non-leaf skill terms.
    pub skill_generals: Vec<Symbol>,
    /// Leaf city terms.
    pub city_leaves: Vec<Symbol>,
    /// Non-leaf location terms.
    pub city_generals: Vec<Symbol>,
    /// Leaf position terms.
    pub position_leaves: Vec<Symbol>,
    /// Non-leaf position terms.
    pub position_generals: Vec<Symbol>,
}

impl JobFinderDomain {
    /// Compiles the domain into `interner`.
    pub fn build(interner: &mut Interner) -> Self {
        let ontology =
            parse_ontology(JOBFINDER_STO, interner).expect("embedded ontology must parse");
        // University names are flat publisher vocabulary, interned here.
        let universities = ["uoft", "waterloo_u", "mit", "stanford", "cmu", "tu_berlin", "eth"]
            .iter()
            .map(|u| interner.intern(u))
            .collect();

        let sym = |i: &Interner, name: &str| {
            i.get(name).unwrap_or_else(|| panic!("ontology must define '{name}'"))
        };
        let subtree = |o: &Ontology, i: &Interner, root: &str| -> (Vec<Symbol>, Vec<Symbol>) {
            let root = sym(i, root);
            let mut leaves = Vec::new();
            let mut generals = vec![root];
            for (concept, _) in o.taxonomy.descendants(root) {
                if o.taxonomy.children(concept).is_empty() {
                    leaves.push(concept);
                } else {
                    generals.push(concept);
                }
            }
            leaves.sort_unstable();
            generals.sort_unstable();
            (leaves, generals)
        };

        let (degree_leaves, degree_generals) = subtree(&ontology, interner, "degree");
        let (skill_leaves, skill_generals) = subtree(&ontology, interner, "skill");
        let (city_leaves, city_generals) = subtree(&ontology, interner, "location");
        let (position_leaves, position_generals) = subtree(&ontology, interner, "position");

        let attr_city = interner.intern("city");
        JobFinderDomain {
            attr_university: sym(interner, "university"),
            attr_school: sym(interner, "school"),
            attr_degree: sym(interner, "degree"),
            attr_skill: sym(interner, "skill"),
            attr_experience: sym(interner, "professional experience"),
            attr_graduation_year: sym(interner, "graduation year"),
            attr_salary: sym(interner, "salary"),
            attr_compensation: sym(interner, "compensation"),
            attr_monthly_salary: sym(interner, "monthly_salary"),
            attr_city,
            attr_position: sym(interner, "position"),
            attr_first_year: sym(interner, "first programming year"),
            attr_level: sym(interner, "level"),
            universities,
            degree_leaves,
            degree_generals,
            skill_leaves,
            skill_generals,
            city_leaves,
            city_generals,
            position_leaves,
            position_generals,
            ontology,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stopss_ontology::SemanticSource;

    #[test]
    fn domain_compiles_with_expected_shape() {
        let mut i = Interner::new();
        let d = JobFinderDomain::build(&mut i);
        let (aliases, concepts, edges, maps) = d.ontology.stats();
        assert!(aliases >= 12, "synonym aliases: {aliases}");
        assert!(concepts >= 60, "concepts: {concepts}");
        assert!(edges >= 60, "edges: {edges}");
        assert_eq!(maps, 4);
        assert_eq!(d.universities.len(), 7);
        assert!(d.degree_leaves.len() >= 7);
        assert!(d.skill_leaves.len() >= 15);
    }

    #[test]
    fn key_relations_hold() {
        let mut i = Interner::new();
        let d = JobFinderDomain::build(&mut i);
        let o = &d.ontology;
        // Synonyms.
        assert_eq!(o.resolve_synonym(d.attr_school), d.attr_university);
        let experience = i.get("experience").unwrap();
        assert_eq!(o.resolve_synonym(experience), d.attr_experience);
        // Hierarchy (values).
        let phd = i.get("phd").unwrap();
        let degree = i.get("degree").unwrap();
        assert_eq!(o.distance(phd, degree), Some(3));
        let cobol = i.get("cobol").unwrap();
        let skill = i.get("skill").unwrap();
        assert!(o.is_a(cobol, skill));
        // Hierarchy (attributes).
        assert!(o.is_a(d.attr_salary, d.attr_compensation));
        // Leaves never have children.
        for leaf in &d.skill_leaves {
            assert!(o.taxonomy.children(*leaf).is_empty());
        }
        for general in &d.skill_generals {
            assert!(!o.taxonomy.children(*general).is_empty());
        }
    }

    #[test]
    fn mainframe_inference_matches_paper_intro() {
        use stopss_types::{EventBuilder, Value};
        let mut i = Interner::new();
        let d = JobFinderDomain::build(&mut i);
        let event = EventBuilder::new(&mut i)
            .term("skill", "cobol")
            .pair("first programming year", 1972i64)
            .build();
        let mut produced = Vec::new();
        d.ontology.apply_mappings(&event, &i, 2003, &mut |name, pairs| {
            produced.push((name.to_owned(), pairs));
        });
        let mainframe = i.get("mainframe_developer").unwrap();
        assert!(
            produced.iter().any(|(name, pairs)| name == "mainframe_inference"
                && pairs.contains(&(d.attr_position, Value::Sym(mainframe)))),
            "COBOL + 1960-1980 must yield a mainframe developer: {produced:?}"
        );
    }

    #[test]
    fn domain_is_deterministic_across_builds() {
        let mut i1 = Interner::new();
        let d1 = JobFinderDomain::build(&mut i1);
        let mut i2 = Interner::new();
        let d2 = JobFinderDomain::build(&mut i2);
        assert_eq!(d1.ontology.stats(), d2.ontology.stats());
        assert_eq!(d1.skill_leaves, d2.skill_leaves);
    }
}
