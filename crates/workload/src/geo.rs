//! Geo/alerting scenario domain.
//!
//! The deep-hierarchy, mapping-heavy corner of the workload space: the
//! place taxonomy runs five levels (world → continent → country →
//! province → city → district), so a subscription to `canada` only
//! reaches a district-level publication through a long generalization
//! walk; and most events report *raw* measurements (magnitude, wind,
//! rainfall) that a pipeline of six mapping functions must interpret —
//! including a two-link chain (magnitude ⇒ severity ⇒ red alert) that
//! only fires transitively.

use stopss_ontology::{parse_ontology, Ontology};
use stopss_types::{Event, Interner, Operator, Predicate, SubId, Subscription, Symbol, Value};

use crate::rng::Rng;

/// The geo-alerting ontology in `.sto` source form.
pub const GEO_STO: &str = r#"
domain geo_alerts

# ------------------------------------------------------------------ synonyms
synonyms location = place, area
synonyms magnitude = richter
synonyms hazard_kind = phenomenon, "event type"
synonyms severity = "alert level"

# ------------------------------------ places (5 levels below world)
isa canada -> north_america -> world
isa usa -> north_america
isa germany -> europe -> world
isa france -> europe
isa ontario -> canada
isa quebec -> canada
isa california -> usa
isa new_york_state -> usa
isa bavaria -> germany
isa normandy -> france
isa toronto_city -> ontario
isa ottawa_city -> ontario
isa montreal_city -> quebec
isa los_angeles -> california
isa san_francisco -> california
isa albany -> new_york_state
isa munich_city -> bavaria
isa rouen -> normandy
isa downtown_toronto -> toronto_city
isa east_york -> toronto_city
isa old_montreal -> montreal_city
isa hollywood -> los_angeles
isa mission_district -> san_francisco
isa schwabing -> munich_city

# ------------------------------------------------ hazards (3 levels)
isa hurricane -> storm -> weather
isa tornado -> storm
isa blizzard -> storm
isa flood -> weather
isa heatwave -> weather
isa earthquake -> seismic -> hazard
isa aftershock -> seismic
isa wildfire -> fire_hazard -> hazard
isa weather -> hazard

# --------------------------------------------------------- mapping functions
map quake_critical:
    when magnitude >= 7
    emit severity = term(critical)
end

map quake_watch:
    when magnitude >= 5
    when magnitude < 7
    emit severity = term(elevated)
end

map hurricane_class:
    when wind_kph >= 118
    emit hazard_kind = term(hurricane)
end

map flood_from_rain:
    when rainfall_mm >= 100
    emit hazard_kind = term(flood)
end

map evacuation_radius:
    when magnitude exists
    emit evac_km = magnitude * 10
end

map red_alert:
    when severity = critical
    emit alert = term(red)
end
"#;

/// The compiled geo-alerting domain with symbol handles for generators.
#[derive(Debug, Clone)]
pub struct GeoDomain {
    /// The compiled ontology.
    pub ontology: Ontology,
    /// Root attribute `location` (aliases: place, area).
    pub attr_location: Symbol,
    /// Alias attribute `place`.
    pub attr_place: Symbol,
    /// Root attribute `hazard_kind` (aliases: phenomenon, "event type").
    pub attr_hazard_kind: Symbol,
    /// Alias attribute `phenomenon`.
    pub attr_phenomenon: Symbol,
    /// Root attribute `magnitude` (alias: richter).
    pub attr_magnitude: Symbol,
    /// Attribute `wind_kph` (mapping trigger).
    pub attr_wind_kph: Symbol,
    /// Attribute `rainfall_mm` (mapping trigger).
    pub attr_rainfall_mm: Symbol,
    /// Attribute `severity` (derived; alias: "alert level").
    pub attr_severity: Symbol,
    /// Attribute `evac_km` (derived).
    pub attr_evac_km: Symbol,
    /// Attribute `alert` (derived by the chained red-alert rule).
    pub attr_alert: Symbol,
    /// Term `critical`.
    pub term_critical: Symbol,
    /// Term `elevated`.
    pub term_elevated: Symbol,
    /// Term `red`.
    pub term_red: Symbol,
    /// Leaf places (districts and childless cities).
    pub place_leaves: Vec<Symbol>,
    /// Non-leaf places (countries, provinces, cities with districts …).
    pub place_generals: Vec<Symbol>,
    /// Leaf hazards.
    pub hazard_leaves: Vec<Symbol>,
    /// Non-leaf hazards.
    pub hazard_generals: Vec<Symbol>,
}

impl GeoDomain {
    /// Compiles the domain into `interner`.
    pub fn build(interner: &mut Interner) -> Self {
        let ontology = parse_ontology(GEO_STO, interner).expect("embedded ontology must parse");
        let sym = |i: &Interner, name: &str| {
            i.get(name).unwrap_or_else(|| panic!("ontology must define '{name}'"))
        };
        let subtree = |o: &Ontology, i: &Interner, root: &str| -> (Vec<Symbol>, Vec<Symbol>) {
            let root = sym(i, root);
            let mut leaves = Vec::new();
            let mut generals = vec![root];
            for (concept, _) in o.taxonomy.descendants(root) {
                if o.taxonomy.children(concept).is_empty() {
                    leaves.push(concept);
                } else {
                    generals.push(concept);
                }
            }
            leaves.sort_unstable();
            generals.sort_unstable();
            (leaves, generals)
        };

        let (place_leaves, place_generals) = subtree(&ontology, interner, "world");
        let (hazard_leaves, hazard_generals) = subtree(&ontology, interner, "hazard");

        GeoDomain {
            attr_location: sym(interner, "location"),
            attr_place: sym(interner, "place"),
            attr_hazard_kind: sym(interner, "hazard_kind"),
            attr_phenomenon: sym(interner, "phenomenon"),
            attr_magnitude: sym(interner, "magnitude"),
            attr_wind_kph: sym(interner, "wind_kph"),
            attr_rainfall_mm: sym(interner, "rainfall_mm"),
            attr_severity: sym(interner, "severity"),
            attr_evac_km: sym(interner, "evac_km"),
            attr_alert: sym(interner, "alert"),
            term_critical: sym(interner, "critical"),
            term_elevated: sym(interner, "elevated"),
            term_red: sym(interner, "red"),
            place_leaves,
            place_generals,
            hazard_leaves,
            hazard_generals,
            ontology,
        }
    }
}

/// Knobs for the geo-alerting workload.
#[derive(Clone, Copy, Debug)]
pub struct GeoWorkloadConfig {
    /// Number of standing alert rules (subscriptions).
    pub subscriptions: usize,
    /// Number of field reports (publications).
    pub publications: usize,
    /// RNG seed; equal seeds give identical workloads.
    pub seed: u64,
    /// Probability an alert rule names a *general* (non-leaf) place or
    /// hazard — the deep-hierarchy walks are the point of this domain.
    pub general_term_bias: f64,
    /// Probability a report spells an attribute with a synonym alias
    /// (`place` for `location`, `phenomenon` for `hazard_kind`).
    pub alias_bias: f64,
}

impl Default for GeoWorkloadConfig {
    fn default() -> Self {
        GeoWorkloadConfig {
            subscriptions: 400,
            publications: 800,
            seed: 2003,
            general_term_bias: 0.7,
            alias_bias: 0.4,
        }
    }
}

/// Generates a geo-alerting workload. Deterministic in `config.seed`.
pub fn generate_geo(domain: &GeoDomain, config: &GeoWorkloadConfig) -> crate::Workload {
    let mut rng = Rng::new(config.seed);
    let mut sub_rng = rng.fork(1);
    let mut pub_rng = rng.fork(2);
    let subscriptions = (0..config.subscriptions)
        .map(|k| geo_subscription(domain, config, &mut sub_rng, SubId(k as u64)))
        .collect();
    let publications =
        (0..config.publications).map(|_| geo_publication(domain, config, &mut pub_rng)).collect();
    crate::Workload { subscriptions, publications }
}

/// One alert rule: 1..=3 predicates over place, hazard kind, derived
/// severity/alert, or the derived evacuation radius.
fn geo_subscription(
    domain: &GeoDomain,
    config: &GeoWorkloadConfig,
    rng: &mut Rng,
    id: SubId,
) -> Subscription {
    let n_preds = 1 + rng.index(3);
    let mut templates: Vec<usize> = (0..5).collect();
    rng.shuffle(&mut templates);
    let mut preds = Vec::with_capacity(n_preds);
    for template in templates.into_iter().take(n_preds) {
        let pred = match template {
            0 => {
                let pool = if rng.chance(config.general_term_bias) {
                    &domain.place_generals
                } else {
                    &domain.place_leaves
                };
                Predicate::eq(domain.attr_location, *rng.pick(pool))
            }
            1 => {
                let pool = if rng.chance(config.general_term_bias) {
                    &domain.hazard_generals
                } else {
                    &domain.hazard_leaves
                };
                Predicate::eq(domain.attr_hazard_kind, *rng.pick(pool))
            }
            2 => {
                let level =
                    if rng.chance(0.5) { domain.term_critical } else { domain.term_elevated };
                Predicate::eq(domain.attr_severity, level)
            }
            3 => Predicate::eq(domain.attr_alert, domain.term_red),
            _ => Predicate::new(
                domain.attr_evac_km,
                Operator::Ge,
                Value::Int(rng.range_i64(2, 9) * 10),
            ),
        };
        preds.push(pred);
    }
    Subscription::new(id, preds)
}

/// One field report: a leaf place, a leaf hazard, and one raw measurement
/// that only the mapping pipeline can relate to alert rules.
fn geo_publication(domain: &GeoDomain, config: &GeoWorkloadConfig, rng: &mut Rng) -> Event {
    let mut event = Event::with_capacity(3);
    let place_attr =
        if rng.chance(config.alias_bias) { domain.attr_place } else { domain.attr_location };
    event.push(place_attr, Value::Sym(*rng.pick(&domain.place_leaves)));
    let hazard_attr = if rng.chance(config.alias_bias) {
        domain.attr_phenomenon
    } else {
        domain.attr_hazard_kind
    };
    event.push(hazard_attr, Value::Sym(*rng.pick(&domain.hazard_leaves)));
    match rng.index(3) {
        0 => event.push(domain.attr_magnitude, Value::Int(rng.range_i64(3, 10))),
        1 => event.push(domain.attr_wind_kph, Value::Int(rng.range_i64(40, 240))),
        _ => event.push(domain.attr_rainfall_mm, Value::Int(rng.range_i64(10, 240))),
    }
    event
}

#[cfg(test)]
mod tests {
    use super::*;
    use stopss_ontology::SemanticSource;

    fn domain() -> (Interner, GeoDomain) {
        let mut i = Interner::new();
        let d = GeoDomain::build(&mut i);
        (i, d)
    }

    #[test]
    fn place_hierarchy_is_deep() {
        let (i, d) = domain();
        let world = i.get("world").unwrap();
        let downtown = i.get("downtown_toronto").unwrap();
        assert_eq!(d.ontology.distance(downtown, world), Some(5));
        let canada = i.get("canada").unwrap();
        assert!(d.ontology.is_a(downtown, canada));
        assert!(d.place_leaves.contains(&downtown));
        assert!(d.place_generals.contains(&canada));
    }

    #[test]
    fn severity_mappings_partition_the_magnitude_scale() {
        let (i, d) = domain();
        let severities = |magnitude: i64| -> Vec<Value> {
            let event = Event::new().with(d.attr_magnitude, Value::Int(magnitude));
            let mut out = Vec::new();
            d.ontology.apply_mappings(&event, &i, 2003, &mut |_, pairs| {
                for (attr, value) in pairs {
                    if attr == d.attr_severity {
                        out.push(value);
                    }
                }
            });
            out
        };
        assert!(matches!(severities(8)[..], [Value::Sym(s)] if s == d.term_critical));
        assert!(matches!(severities(6)[..], [Value::Sym(s)] if s == d.term_elevated));
        assert!(severities(4).is_empty());
    }

    #[test]
    fn red_alert_chains_off_derived_severity() {
        let (i, d) = domain();
        // The chain only closes transitively: a raw magnitude report does
        // not carry `severity`, so `red_alert` needs the derived event.
        let derived = Event::new().with(d.attr_severity, Value::Sym(d.term_critical));
        let mut fired = Vec::new();
        d.ontology.apply_mappings(&derived, &i, 2003, &mut |name, _| fired.push(name.to_owned()));
        assert_eq!(fired, vec!["red_alert".to_owned()]);
    }

    #[test]
    fn evacuation_radius_scales_with_magnitude() {
        let (i, d) = domain();
        let event = Event::new().with(d.attr_magnitude, Value::Int(7));
        let mut radius = None;
        d.ontology.apply_mappings(&event, &i, 2003, &mut |name, pairs| {
            if name == "evacuation_radius" {
                radius = Some(pairs[0].1);
            }
        });
        assert!(matches!(radius, Some(Value::Int(70))));
    }

    #[test]
    fn generation_is_deterministic_and_mapping_heavy() {
        let (_, d) = domain();
        let config = GeoWorkloadConfig::default();
        let w1 = generate_geo(&d, &config);
        let w2 = generate_geo(&d, &config);
        assert_eq!(w1.subscriptions, w2.subscriptions);
        assert_eq!(w1.publications, w2.publications);
        // Every report carries exactly one raw measurement — alert rules
        // can only reach them through the mapping pipeline.
        for event in &w1.publications {
            let raw = [d.attr_magnitude, d.attr_wind_kph, d.attr_rainfall_mm]
                .iter()
                .filter(|a| event.has_attr(**a))
                .count();
            assert_eq!(raw, 1);
            assert!(!event.has_attr(d.attr_severity), "severity is never published raw");
        }
    }
}
