//! IoT / building-telemetry scenario domain.
//!
//! The opposite corner of the workload space from the job finder: the
//! taxonomy is *shallow* (sensor kinds and zones sit at most two levels
//! below their roots) but the event rate is huge relative to the
//! subscription population — a handful of standing monitoring rules
//! filtering a firehose of sensor readings. Semantic load comes from
//! alias spellings (`temp` vs `temperature`, `device` vs `sensor`), from
//! shallow generalization (subscribe to `environmental`, publish
//! `thermometer`), and from two mapping functions: Fahrenheit readings
//! normalized to Celsius, and a low-battery status inferred from the raw
//! charge level.

use stopss_ontology::{parse_ontology, Ontology};
use stopss_types::{Event, Interner, Operator, Predicate, SubId, Subscription, Symbol, Value};

use crate::rng::Rng;

/// The telemetry ontology in `.sto` source form.
pub const IOT_STO: &str = r#"
domain telemetry

# ------------------------------------------------------------------ synonyms
synonyms temperature = temp
synonyms humidity = rh, "relative humidity"
synonyms sensor = device, node
synonyms zone = area, room

# -------------------------------------------- sensor kinds (depth <= 2)
isa thermometer -> environmental -> sensor_kind
isa hygrometer -> environmental
isa co2_meter -> environmental
isa pir -> motion -> sensor_kind
isa vibration -> motion
isa voltmeter -> power -> sensor_kind
isa current_clamp -> power

# ---------------------------------------------------- zones (depth <= 2)
isa lab_a -> floor_one -> campus
isa lab_b -> floor_one
isa office_a -> floor_two -> campus
isa server_room -> floor_two
isa loading_dock -> floor_one

# --------------------------------------------------------- mapping functions
map fahrenheit_to_celsius:
    when temp_f exists
    emit temperature = (temp_f - 32) * 5 / 9
end

map low_battery_alert:
    when battery <= 20
    emit status = term(low_battery)
end
"#;

/// The compiled telemetry domain with symbol handles for generators.
#[derive(Debug, Clone)]
pub struct IotDomain {
    /// The compiled ontology.
    pub ontology: Ontology,
    /// Root attribute `sensor` (aliases: device, node).
    pub attr_sensor: Symbol,
    /// Alias attribute `device`.
    pub attr_device: Symbol,
    /// Root attribute `zone` (aliases: area, room).
    pub attr_zone: Symbol,
    /// Alias attribute `room`.
    pub attr_room: Symbol,
    /// Root attribute `temperature` (alias: temp).
    pub attr_temperature: Symbol,
    /// Alias attribute `temp`.
    pub attr_temp: Symbol,
    /// Attribute `temp_f` (Fahrenheit reading, mapping trigger).
    pub attr_temp_f: Symbol,
    /// Attribute `battery` (raw charge percent, mapping trigger).
    pub attr_battery: Symbol,
    /// Attribute `status` (produced by the low-battery mapping).
    pub attr_status: Symbol,
    /// Term `low_battery` (the inferred status value).
    pub term_low_battery: Symbol,
    /// Leaf sensor kinds (what devices report).
    pub sensor_leaves: Vec<Symbol>,
    /// Non-leaf sensor kinds (what monitoring rules subscribe with).
    pub sensor_generals: Vec<Symbol>,
    /// Leaf zones.
    pub zone_leaves: Vec<Symbol>,
    /// Non-leaf zones.
    pub zone_generals: Vec<Symbol>,
}

impl IotDomain {
    /// Compiles the domain into `interner`.
    pub fn build(interner: &mut Interner) -> Self {
        let ontology = parse_ontology(IOT_STO, interner).expect("embedded ontology must parse");
        let sym = |i: &Interner, name: &str| {
            i.get(name).unwrap_or_else(|| panic!("ontology must define '{name}'"))
        };
        let subtree = |o: &Ontology, i: &Interner, root: &str| -> (Vec<Symbol>, Vec<Symbol>) {
            let root = sym(i, root);
            let mut leaves = Vec::new();
            let mut generals = vec![root];
            for (concept, _) in o.taxonomy.descendants(root) {
                if o.taxonomy.children(concept).is_empty() {
                    leaves.push(concept);
                } else {
                    generals.push(concept);
                }
            }
            leaves.sort_unstable();
            generals.sort_unstable();
            (leaves, generals)
        };

        let (sensor_leaves, sensor_generals) = subtree(&ontology, interner, "sensor_kind");
        let (zone_leaves, zone_generals) = subtree(&ontology, interner, "campus");

        IotDomain {
            attr_sensor: sym(interner, "sensor"),
            attr_device: sym(interner, "device"),
            attr_zone: sym(interner, "zone"),
            attr_room: sym(interner, "room"),
            attr_temperature: sym(interner, "temperature"),
            attr_temp: sym(interner, "temp"),
            attr_temp_f: sym(interner, "temp_f"),
            attr_battery: sym(interner, "battery"),
            attr_status: sym(interner, "status"),
            term_low_battery: sym(interner, "low_battery"),
            sensor_leaves,
            sensor_generals,
            zone_leaves,
            zone_generals,
            ontology,
        }
    }
}

/// Knobs for the telemetry workload.
#[derive(Clone, Copy, Debug)]
pub struct IotWorkloadConfig {
    /// Number of standing monitoring rules (subscriptions).
    pub subscriptions: usize,
    /// Number of sensor readings (publications). Telemetry is
    /// publication-dominated: the default ratio is 10 readings per rule.
    pub publications: usize,
    /// RNG seed; equal seeds give identical workloads.
    pub seed: u64,
    /// Probability a rule uses a *general* (non-leaf) sensor kind or zone.
    pub general_term_bias: f64,
    /// Probability a reading spells an attribute with a synonym alias
    /// (`device` for `sensor`, `room` for `zone`, `temp` for
    /// `temperature`).
    pub alias_bias: f64,
    /// Probability a reading reports `temp_f` instead of `temperature`
    /// (requiring the Fahrenheit mapping).
    pub fahrenheit_bias: f64,
}

impl Default for IotWorkloadConfig {
    fn default() -> Self {
        IotWorkloadConfig {
            subscriptions: 200,
            publications: 2_000,
            seed: 2003,
            general_term_bias: 0.5,
            alias_bias: 0.4,
            fahrenheit_bias: 0.35,
        }
    }
}

/// Generates a telemetry workload. Deterministic in `config.seed`.
pub fn generate_iot(domain: &IotDomain, config: &IotWorkloadConfig) -> crate::Workload {
    let mut rng = Rng::new(config.seed);
    let mut sub_rng = rng.fork(1);
    let mut pub_rng = rng.fork(2);
    let subscriptions = (0..config.subscriptions)
        .map(|k| iot_subscription(domain, config, &mut sub_rng, SubId(k as u64)))
        .collect();
    let publications =
        (0..config.publications).map(|_| iot_publication(domain, config, &mut pub_rng)).collect();
    crate::Workload { subscriptions, publications }
}

/// One monitoring rule: 1..=3 predicates over sensor kind, zone,
/// temperature thresholds, battery level, or the inferred status.
fn iot_subscription(
    domain: &IotDomain,
    config: &IotWorkloadConfig,
    rng: &mut Rng,
    id: SubId,
) -> Subscription {
    let n_preds = 1 + rng.index(3);
    let mut templates: Vec<usize> = (0..5).collect();
    rng.shuffle(&mut templates);
    let mut preds = Vec::with_capacity(n_preds);
    for template in templates.into_iter().take(n_preds) {
        let pred = match template {
            0 => {
                let pool = if rng.chance(config.general_term_bias) {
                    &domain.sensor_generals
                } else {
                    &domain.sensor_leaves
                };
                Predicate::eq(domain.attr_sensor, *rng.pick(pool))
            }
            1 => {
                let pool = if rng.chance(config.general_term_bias) {
                    &domain.zone_generals
                } else {
                    &domain.zone_leaves
                };
                Predicate::eq(domain.attr_zone, *rng.pick(pool))
            }
            2 => {
                // Half the threshold rules are written against the alias
                // `temp`, exercising attribute synonym resolution.
                let attr = if rng.chance(0.5) { domain.attr_temp } else { domain.attr_temperature };
                let op = if rng.chance(0.5) { Operator::Ge } else { Operator::Le };
                Predicate::new(attr, op, Value::Int(rng.range_i64(10, 35)))
            }
            3 => {
                Predicate::new(domain.attr_battery, Operator::Le, Value::Int(rng.range_i64(5, 40)))
            }
            _ => Predicate::eq(domain.attr_status, domain.term_low_battery),
        };
        preds.push(pred);
    }
    Subscription::new(id, preds)
}

/// One sensor reading: a leaf kind, a leaf zone, a temperature (sometimes
/// in Fahrenheit), and a battery level.
fn iot_publication(domain: &IotDomain, config: &IotWorkloadConfig, rng: &mut Rng) -> Event {
    let mut event = Event::with_capacity(4);
    let sensor_attr =
        if rng.chance(config.alias_bias) { domain.attr_device } else { domain.attr_sensor };
    event.push(sensor_attr, Value::Sym(*rng.pick(&domain.sensor_leaves)));
    let zone_attr = if rng.chance(config.alias_bias) { domain.attr_room } else { domain.attr_zone };
    event.push(zone_attr, Value::Sym(*rng.pick(&domain.zone_leaves)));
    if rng.chance(config.fahrenheit_bias) {
        event.push(domain.attr_temp_f, Value::Int(rng.range_i64(32, 110)));
    } else {
        event.push(domain.attr_temperature, Value::Int(rng.range_i64(0, 45)));
    }
    event.push(domain.attr_battery, Value::Int(rng.range_i64(0, 101)));
    event
}

#[cfg(test)]
mod tests {
    use super::*;
    use stopss_ontology::SemanticSource;

    fn domain() -> (Interner, IotDomain) {
        let mut i = Interner::new();
        let d = IotDomain::build(&mut i);
        (i, d)
    }

    #[test]
    fn taxonomy_is_shallow() {
        let (i, d) = domain();
        let sensor_kind = i.get("sensor_kind").unwrap();
        for leaf in &d.sensor_leaves {
            let dist = d.ontology.distance(*leaf, sensor_kind).unwrap();
            assert!(dist <= 2, "telemetry taxonomy must stay shallow, got {dist}");
        }
        assert_eq!(d.sensor_leaves.len(), 7);
        assert_eq!(d.zone_leaves.len(), 5);
    }

    #[test]
    fn fahrenheit_mapping_converts() {
        let (i, d) = domain();
        let event = Event::new().with(d.attr_temp_f, Value::Int(86));
        let mut produced = Vec::new();
        d.ontology.apply_mappings(&event, &i, 2003, &mut |name, pairs| {
            produced.push((name.to_owned(), pairs));
        });
        assert_eq!(produced.len(), 1);
        assert_eq!(produced[0].1, vec![(d.attr_temperature, Value::Int(30))]);
    }

    #[test]
    fn low_battery_mapping_fires_only_below_threshold() {
        let (i, d) = domain();
        for (battery, fires) in [(5, true), (20, true), (21, false), (90, false)] {
            let event = Event::new().with(d.attr_battery, Value::Int(battery));
            let mut fired = false;
            d.ontology.apply_mappings(&event, &i, 2003, &mut |_, pairs| {
                fired = pairs.contains(&(d.attr_status, Value::Sym(d.term_low_battery)));
            });
            assert_eq!(fired, fires, "battery {battery}");
        }
    }

    #[test]
    fn generation_is_deterministic_and_pub_dominated() {
        let (_, d) = domain();
        let config = IotWorkloadConfig::default();
        let w1 = generate_iot(&d, &config);
        let w2 = generate_iot(&d, &config);
        assert_eq!(w1.subscriptions, w2.subscriptions);
        assert_eq!(w1.publications, w2.publications);
        assert!(w1.publications.len() >= 10 * w1.subscriptions.len());
        for event in &w1.publications {
            assert!(event.has_attr(d.attr_battery));
            assert!(event.has_attr(d.attr_sensor) || event.has_attr(d.attr_device));
        }
    }

    #[test]
    fn biases_shift_the_mix() {
        let (_, d) = domain();
        let config = IotWorkloadConfig {
            subscriptions: 0,
            publications: 100,
            alias_bias: 1.0,
            fahrenheit_bias: 1.0,
            ..Default::default()
        };
        let w = generate_iot(&d, &config);
        assert!(w.publications.iter().all(|e| e.has_attr(d.attr_device)));
        assert!(w.publications.iter().all(|e| e.has_attr(d.attr_temp_f)));
    }
}
