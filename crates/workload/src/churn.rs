//! Subscription-churn scenarios and interleaved-vs-sequential replay.
//!
//! The matcher's steady-state semantics are pinned by the oracle suites;
//! what those suites cannot see is *residue*: state an unsubscribe leaves
//! behind, or a flash crowd of subscriptions perturbing later matches. A
//! [`ChurnScenario`] is a deterministic op stream (subscribe /
//! unsubscribe / publish) generated from any [`Fixture`]; the two replay
//! functions score it differentially — [`replay_interleaved`] runs the
//! stream against one live matcher, while [`replay_sequential`] rebuilds
//! a fresh matcher holding exactly the live subscription set before each
//! publish. Equal match sets prove churn leaves no trace.

use stopss_core::{Config, Match, SToPSS, ShardedSToPSS};
use stopss_types::{SubId, Subscription};

use crate::rng::Rng;
use crate::scenario::Fixture;

/// One step of a churn stream.
#[derive(Clone, Debug)]
pub enum ChurnOp {
    /// Register a new subscription (fresh unique id).
    Subscribe(Subscription),
    /// Drop a currently-live subscription.
    Unsubscribe(SubId),
    /// Publish the fixture event at this index.
    Publish(usize),
}

/// The shape of the churn stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnMode {
    /// Unsubscribe-dominated: the live set keeps shrinking and refilling,
    /// so most ops mutate the subscription tables.
    UnsubscribeHeavy,
    /// Flash crowd: bursts of subscriptions arrive together, a few events
    /// land on the swollen set, then most of the crowd leaves at once.
    FlashCrowd,
}

/// A deterministic op stream over a fixture's subscription/event pools.
#[derive(Clone, Debug)]
pub struct ChurnScenario {
    /// The ops, in replay order.
    pub ops: Vec<ChurnOp>,
    /// How many `Publish` ops the stream contains.
    pub publishes: usize,
}

/// Generates a churn stream of `steps` ops. Subscriptions are drawn from
/// the fixture pool but re-issued under fresh unique ids (so the same
/// template can live, die, and return); publish ops cycle through the
/// fixture's events. Deterministic in `seed`.
pub fn churn_scenario(
    fixture: &Fixture,
    mode: ChurnMode,
    steps: usize,
    seed: u64,
) -> ChurnScenario {
    assert!(!fixture.subscriptions.is_empty() && !fixture.publications.is_empty());
    let mut rng = Rng::new(seed);
    let mut ops = Vec::with_capacity(steps);
    let mut live: Vec<SubId> = Vec::new();
    let mut next_id = 0u64;
    let mut next_event = 0usize;
    let mut publishes = 0usize;

    let mut subscribe = |rng: &mut Rng, live: &mut Vec<SubId>, ops: &mut Vec<ChurnOp>| {
        let template = rng.pick(&fixture.subscriptions);
        let id = SubId(1_000_000 + next_id);
        next_id += 1;
        live.push(id);
        ops.push(ChurnOp::Subscribe(Subscription::new(id, template.predicates().to_vec())));
    };
    let publish = |next_event: &mut usize, publishes: &mut usize, ops: &mut Vec<ChurnOp>| {
        ops.push(ChurnOp::Publish(*next_event % fixture.publications.len()));
        *next_event += 1;
        *publishes += 1;
    };

    while ops.len() < steps {
        match mode {
            ChurnMode::UnsubscribeHeavy => {
                let roll = rng.next_f64();
                if roll < 0.45 && !live.is_empty() {
                    let idx = rng.index(live.len());
                    ops.push(ChurnOp::Unsubscribe(live.swap_remove(idx)));
                } else if roll < 0.75 || live.is_empty() {
                    subscribe(&mut rng, &mut live, &mut ops);
                } else {
                    publish(&mut next_event, &mut publishes, &mut ops);
                }
            }
            ChurnMode::FlashCrowd => {
                // One crowd cycle: burst in, a few events, mass exodus.
                let burst = 5 + rng.index(11);
                for _ in 0..burst {
                    subscribe(&mut rng, &mut live, &mut ops);
                }
                for _ in 0..1 + rng.index(3) {
                    publish(&mut next_event, &mut publishes, &mut ops);
                }
                let leavers = (live.len() * 4) / 5;
                for _ in 0..leavers {
                    let idx = rng.index(live.len());
                    ops.push(ChurnOp::Unsubscribe(live.swap_remove(idx)));
                }
                publish(&mut next_event, &mut publishes, &mut ops);
            }
        }
    }

    ChurnScenario { ops, publishes }
}

/// Sorts a match set by subscription id so replays that differ only in
/// reporting order compare equal.
fn canonical(mut matches: Vec<Match>) -> Vec<Match> {
    matches.sort_by_key(|m| m.sub);
    matches
}

/// Replays the stream against one live single-threaded matcher, returning
/// each publish op's (sub-sorted) match set in stream order.
pub fn replay_interleaved(
    fixture: &Fixture,
    scenario: &ChurnScenario,
    config: Config,
) -> Vec<Vec<Match>> {
    let mut matcher = SToPSS::new(config, fixture.source.clone(), fixture.interner.clone());
    let mut out = Vec::with_capacity(scenario.publishes);
    for op in &scenario.ops {
        match op {
            ChurnOp::Subscribe(sub) => matcher.subscribe(sub.clone()),
            ChurnOp::Unsubscribe(id) => {
                assert!(matcher.unsubscribe(*id), "churn streams only drop live ids");
            }
            ChurnOp::Publish(idx) => {
                out.push(canonical(matcher.publish(&fixture.publications[*idx])));
            }
        }
    }
    out
}

/// Replays the stream against one live sharded matcher (shard count from
/// `config.shards`).
pub fn replay_interleaved_sharded(
    fixture: &Fixture,
    scenario: &ChurnScenario,
    config: Config,
) -> Vec<Vec<Match>> {
    let mut matcher = ShardedSToPSS::new(config, fixture.source.clone(), fixture.interner.clone());
    let mut out = Vec::with_capacity(scenario.publishes);
    for op in &scenario.ops {
        match op {
            ChurnOp::Subscribe(sub) => matcher.subscribe(sub.clone()),
            ChurnOp::Unsubscribe(id) => {
                assert!(matcher.unsubscribe(*id), "churn streams only drop live ids");
            }
            ChurnOp::Publish(idx) => {
                out.push(canonical(matcher.publish(&fixture.publications[*idx])));
            }
        }
    }
    out
}

/// The churn oracle: before every publish op, builds a *fresh* matcher
/// holding exactly the subscriptions live at that point and publishes
/// once. A live matcher that retains unsubscribe residue (or loses a
/// subscription) diverges from this replay.
pub fn replay_sequential(
    fixture: &Fixture,
    scenario: &ChurnScenario,
    config: Config,
) -> Vec<Vec<Match>> {
    let mut live: Vec<Subscription> = Vec::new();
    let mut out = Vec::with_capacity(scenario.publishes);
    for op in &scenario.ops {
        match op {
            ChurnOp::Subscribe(sub) => live.push(sub.clone()),
            ChurnOp::Unsubscribe(id) => {
                let idx = live.iter().position(|s| s.id() == *id).expect("live id");
                live.swap_remove(idx);
            }
            ChurnOp::Publish(idx) => {
                let mut fresh =
                    SToPSS::new(config, fixture.source.clone(), fixture.interner.clone());
                for sub in &live {
                    fresh.subscribe(sub.clone());
                }
                out.push(canonical(fresh.publish(&fixture.publications[*idx])));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::jobfinder_fixture;

    #[test]
    fn churn_scenarios_are_deterministic() {
        let f = jobfinder_fixture(40, 30, 7);
        for mode in [ChurnMode::UnsubscribeHeavy, ChurnMode::FlashCrowd] {
            let a = churn_scenario(&f, mode, 120, 99);
            let b = churn_scenario(&f, mode, 120, 99);
            assert_eq!(a.ops.len(), b.ops.len());
            assert_eq!(a.publishes, b.publishes);
            assert!(a.publishes > 0, "stream must contain publish ops");
            for (x, y) in a.ops.iter().zip(&b.ops) {
                match (x, y) {
                    (ChurnOp::Subscribe(s), ChurnOp::Subscribe(t)) => assert_eq!(s, t),
                    (ChurnOp::Unsubscribe(s), ChurnOp::Unsubscribe(t)) => assert_eq!(s, t),
                    (ChurnOp::Publish(s), ChurnOp::Publish(t)) => assert_eq!(s, t),
                    other => panic!("op kind mismatch: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn unsubscribe_heavy_is_mutation_dominated() {
        let f = jobfinder_fixture(40, 30, 7);
        let s = churn_scenario(&f, ChurnMode::UnsubscribeHeavy, 400, 11);
        let mutations = s.ops.iter().filter(|op| !matches!(op, ChurnOp::Publish(_))).count();
        assert!(mutations * 2 > s.ops.len(), "churn ops must dominate publishes");
    }

    #[test]
    fn interleaved_equals_sequential_on_jobfinder() {
        let f = jobfinder_fixture(30, 20, 5);
        let s = churn_scenario(&f, ChurnMode::FlashCrowd, 80, 3);
        let config = Config::default();
        let interleaved = replay_interleaved(&f, &s, config);
        let sequential = replay_sequential(&f, &s, config);
        assert_eq!(interleaved, sequential);
        let sharded = replay_interleaved_sharded(&f, &s, config.with_shards(4));
        assert_eq!(sharded, sequential);
    }
}
