//! Subscription/ontology-churn scenarios and interleaved-vs-sequential
//! replay — the differential harness for the epoch-snapshot control plane.
//!
//! The matcher's steady-state semantics are pinned by the oracle suites;
//! what those suites cannot see is *residue*: state an unsubscribe leaves
//! behind, a flash crowd of subscriptions perturbing later matches, or a
//! live ontology edit leaking into publications that started before it. A
//! [`ChurnScenario`] is a deterministic op stream (subscribe /
//! unsubscribe / ontology-swap / publish) generated from any [`Fixture`];
//! the replay functions score it differentially:
//!
//! * [`replay_interleaved`] / [`replay_interleaved_sharded`] run the
//!   stream against one live matcher, single-threaded — the residue
//!   check. [`replay_sequential`] is their oracle: a fresh matcher built
//!   from the then-live subscription set (and then-current ontology)
//!   before each publish. Equal match sets prove churn leaves no trace.
//! * [`replay_concurrent`] / [`replay_concurrent_sharded`] run the
//!   control ops on one thread *racing* publisher threads against the
//!   same live matcher — the snapshot-control-plane check. Every control
//!   op returns the control epoch of the snapshot it published, every
//!   publication carries the epoch it matched against, and epochs from a
//!   single control thread are consecutive — so the racy execution
//!   linearizes: a publication stamped with epoch *e* must produce
//!   byte-identical matches (provenance included) to a fresh oracle
//!   holding exactly the state after the first `e` control ops, and a
//!   sequential replay of the linearized stream must reproduce the live
//!   matcher's final statistics exactly. Any torn snapshot — a publish
//!   observing half a control op, or stats drifting under concurrency —
//!   breaks one of the two comparisons.

use stopss_types::sync::Arc;

use stopss_core::{Config, Match, MatcherStats, PublishResult, SToPSS, ShardedSToPSS};
use stopss_ontology::Ontology;
use stopss_types::{Event, SubId, Subscription, Symbol};

use crate::rng::Rng;
use crate::scenario::Fixture;

/// One step of a churn stream.
#[derive(Clone, Debug)]
pub enum ChurnOp {
    /// Register a new subscription (fresh unique id).
    Subscribe(Subscription),
    /// Drop a currently-live subscription.
    Unsubscribe(SubId),
    /// Publish the fixture event at this index.
    Publish(usize),
    /// Swap the live ontology to [`ChurnScenario::ontologies`] at this
    /// index — semantic evolution between publications.
    SetOntology(usize),
}

/// The shape of the churn stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnMode {
    /// Unsubscribe-dominated: the live set keeps shrinking and refilling,
    /// so most ops mutate the subscription tables.
    UnsubscribeHeavy,
    /// Flash crowd: bursts of subscriptions arrive together, a few events
    /// land on the swollen set, then most of the crowd leaves at once.
    FlashCrowd,
}

/// A deterministic op stream over a fixture's subscription/event pools.
#[derive(Clone, Debug)]
pub struct ChurnScenario {
    /// The ops, in replay order.
    pub ops: Vec<ChurnOp>,
    /// How many `Publish` ops the stream contains.
    pub publishes: usize,
    /// The ontology variants `SetOntology` ops index into. Entry 0 is the
    /// fixture's base ontology; later entries grow it with deterministic
    /// synonym/is-a edits over the fixture's own terms.
    pub ontologies: Vec<Arc<Ontology>>,
}

/// Derives `extra` evolved ontology variants from the fixture's base by
/// adding seeded synonym and is-a edges between terms the fixture
/// actually uses (attribute names and symbolic values), skipping edits
/// the ontology rejects (conflicts, cycles). Each variant extends the
/// previous one, modelling monotone knowledge growth.
fn ontology_variants(fixture: &Fixture, extra: usize, rng: &mut Rng) -> Vec<Arc<Ontology>> {
    let mut terms: Vec<Symbol> = Vec::new();
    for sub in &fixture.subscriptions {
        for p in sub.predicates() {
            terms.push(p.attr);
            if let stopss_types::Value::Sym(s) = p.value {
                terms.push(s);
            }
        }
    }
    for event in &fixture.publications {
        for (attr, value) in event.pairs() {
            terms.push(*attr);
            if let stopss_types::Value::Sym(s) = value {
                terms.push(*s);
            }
        }
    }
    terms.sort_unstable();
    terms.dedup();

    let mut variants = vec![fixture.source.clone()];
    let mut current = (*fixture.source).clone();
    for _ in 0..extra {
        let mut applied = 0;
        let mut attempts = 0;
        while applied < 2 && attempts < 16 && terms.len() >= 2 {
            attempts += 1;
            let a = terms[rng.index(terms.len())];
            let b = terms[rng.index(terms.len())];
            if a == b {
                continue;
            }
            let ok = fixture.interner.with(|i| {
                if rng.chance(0.5) {
                    current.synonyms.add_synonym(a, b, i).is_ok()
                } else {
                    current.taxonomy.add_isa(b, a, i).is_ok()
                }
            });
            if ok {
                applied += 1;
            }
        }
        variants.push(Arc::new(current.clone()));
    }
    variants
}

/// Generates a churn stream of `steps` ops. Subscriptions are drawn from
/// the fixture pool but re-issued under fresh unique ids (so the same
/// template can live, die, and return); publish ops cycle through the
/// fixture's events; ontology-swap ops cycle through deterministic
/// evolved variants of the fixture ontology. Deterministic in `seed`.
pub fn churn_scenario(
    fixture: &Fixture,
    mode: ChurnMode,
    steps: usize,
    seed: u64,
) -> ChurnScenario {
    assert!(!fixture.subscriptions.is_empty() && !fixture.publications.is_empty());
    let mut rng = Rng::new(seed);
    let mut onto_rng = rng.fork(7);
    let ontologies = ontology_variants(fixture, 1 + steps / 50, &mut onto_rng);
    let mut ops = Vec::with_capacity(steps);
    let mut live: Vec<SubId> = Vec::new();
    let mut next_id = 0u64;
    let mut next_event = 0usize;
    let mut next_variant = 1usize;
    let mut publishes = 0usize;

    let mut subscribe = |rng: &mut Rng, live: &mut Vec<SubId>, ops: &mut Vec<ChurnOp>| {
        let template = rng.pick(&fixture.subscriptions);
        let id = SubId(1_000_000 + next_id);
        next_id += 1;
        live.push(id);
        ops.push(ChurnOp::Subscribe(Subscription::new(id, template.predicates().to_vec())));
    };
    let publish = |next_event: &mut usize, publishes: &mut usize, ops: &mut Vec<ChurnOp>| {
        ops.push(ChurnOp::Publish(*next_event % fixture.publications.len()));
        *next_event += 1;
        *publishes += 1;
    };
    let evolve = |next_variant: &mut usize, ops: &mut Vec<ChurnOp>| {
        if ontologies.len() < 2 {
            return;
        }
        ops.push(ChurnOp::SetOntology(*next_variant));
        *next_variant = (*next_variant + 1) % ontologies.len();
    };

    while ops.len() < steps {
        match mode {
            ChurnMode::UnsubscribeHeavy => {
                let roll = rng.next_f64();
                if roll < 0.45 && !live.is_empty() {
                    let idx = rng.index(live.len());
                    ops.push(ChurnOp::Unsubscribe(live.swap_remove(idx)));
                } else if roll < 0.72 || live.is_empty() {
                    subscribe(&mut rng, &mut live, &mut ops);
                } else if roll < 0.78 {
                    evolve(&mut next_variant, &mut ops);
                } else {
                    publish(&mut next_event, &mut publishes, &mut ops);
                }
            }
            ChurnMode::FlashCrowd => {
                // One crowd cycle: burst in, a few events, mass exodus —
                // with the knowledge base occasionally evolving underneath.
                let burst = 5 + rng.index(11);
                for _ in 0..burst {
                    subscribe(&mut rng, &mut live, &mut ops);
                }
                for _ in 0..1 + rng.index(3) {
                    publish(&mut next_event, &mut publishes, &mut ops);
                }
                if rng.chance(0.35) {
                    evolve(&mut next_variant, &mut ops);
                }
                let leavers = (live.len() * 4) / 5;
                for _ in 0..leavers {
                    let idx = rng.index(live.len());
                    ops.push(ChurnOp::Unsubscribe(live.swap_remove(idx)));
                }
                publish(&mut next_event, &mut publishes, &mut ops);
            }
        }
    }

    ChurnScenario { ops, publishes, ontologies }
}

/// Sorts a match set by subscription id so replays that differ only in
/// reporting order compare equal.
fn canonical(mut matches: Vec<Match>) -> Vec<Match> {
    matches.sort_by_key(|m| m.sub);
    matches
}

/// Replays the stream against one live single-threaded matcher, returning
/// each publish op's (sub-sorted) match set in stream order.
pub fn replay_interleaved(
    fixture: &Fixture,
    scenario: &ChurnScenario,
    config: Config,
) -> Vec<Vec<Match>> {
    let matcher = SToPSS::new(config, fixture.source.clone(), fixture.interner.clone());
    let mut out = Vec::with_capacity(scenario.publishes);
    for op in &scenario.ops {
        match op {
            ChurnOp::Subscribe(sub) => {
                matcher.subscribe(sub.clone());
            }
            ChurnOp::Unsubscribe(id) => {
                assert!(matcher.unsubscribe(*id).is_some(), "churn streams only drop live ids");
            }
            ChurnOp::SetOntology(idx) => {
                matcher.set_source(scenario.ontologies[*idx].clone());
            }
            ChurnOp::Publish(idx) => {
                out.push(canonical(matcher.publish(&fixture.publications[*idx])));
            }
        }
    }
    out
}

/// Replays the stream against one live sharded matcher (shard count from
/// `config.shards`).
pub fn replay_interleaved_sharded(
    fixture: &Fixture,
    scenario: &ChurnScenario,
    config: Config,
) -> Vec<Vec<Match>> {
    let matcher = ShardedSToPSS::new(config, fixture.source.clone(), fixture.interner.clone());
    let mut out = Vec::with_capacity(scenario.publishes);
    for op in &scenario.ops {
        match op {
            ChurnOp::Subscribe(sub) => {
                matcher.subscribe(sub.clone());
            }
            ChurnOp::Unsubscribe(id) => {
                assert!(matcher.unsubscribe(*id).is_some(), "churn streams only drop live ids");
            }
            ChurnOp::SetOntology(idx) => {
                matcher.set_source(scenario.ontologies[*idx].clone());
            }
            ChurnOp::Publish(idx) => {
                out.push(canonical(matcher.publish(&fixture.publications[*idx])));
            }
        }
    }
    out
}

/// The churn oracle: before every publish op, builds a *fresh* matcher
/// holding exactly the subscriptions live at that point — under the
/// then-current ontology — and publishes once. A live matcher that
/// retains unsubscribe residue (or loses a subscription, or matches
/// through a stale ontology) diverges from this replay.
pub fn replay_sequential(
    fixture: &Fixture,
    scenario: &ChurnScenario,
    config: Config,
) -> Vec<Vec<Match>> {
    let mut live: Vec<Subscription> = Vec::new();
    let mut source = fixture.source.clone();
    let mut out = Vec::with_capacity(scenario.publishes);
    for op in &scenario.ops {
        match op {
            ChurnOp::Subscribe(sub) => live.push(sub.clone()),
            ChurnOp::Unsubscribe(id) => {
                let idx = live.iter().position(|s| s.id() == *id).expect("live id");
                live.swap_remove(idx);
            }
            ChurnOp::SetOntology(idx) => source = scenario.ontologies[*idx].clone(),
            ChurnOp::Publish(idx) => {
                let fresh = SToPSS::new(config, source.clone(), fixture.interner.clone());
                for sub in &live {
                    fresh.subscribe(sub.clone());
                }
                out.push(canonical(fresh.publish(&fixture.publications[*idx])));
            }
        }
    }
    out
}

/// The live-matcher surface the concurrent harness drives: both backends
/// expose `&self` control ops returning the published snapshot's control
/// epoch, and epoch-stamped publish results.
trait LiveMatcher: Sync {
    fn subscribe(&self, sub: Subscription) -> u64;
    fn unsubscribe(&self, id: SubId) -> Option<u64>;
    fn set_source(&self, source: Arc<Ontology>) -> u64;
    fn control_epoch(&self) -> u64;
    fn publish_all(&self, events: &[Event]) -> Vec<PublishResult>;
    fn stats(&self) -> MatcherStats;
}

impl LiveMatcher for SToPSS {
    fn subscribe(&self, sub: Subscription) -> u64 {
        SToPSS::subscribe(self, sub)
    }
    fn unsubscribe(&self, id: SubId) -> Option<u64> {
        SToPSS::unsubscribe(self, id)
    }
    fn set_source(&self, source: Arc<Ontology>) -> u64 {
        SToPSS::set_source(self, source)
    }
    fn control_epoch(&self) -> u64 {
        SToPSS::control_epoch(self)
    }
    fn publish_all(&self, events: &[Event]) -> Vec<PublishResult> {
        events.iter().map(|e| self.publish_detailed(e)).collect()
    }
    fn stats(&self) -> MatcherStats {
        SToPSS::stats(self)
    }
}

impl LiveMatcher for ShardedSToPSS {
    fn subscribe(&self, sub: Subscription) -> u64 {
        ShardedSToPSS::subscribe(self, sub)
    }
    fn unsubscribe(&self, id: SubId) -> Option<u64> {
        ShardedSToPSS::unsubscribe(self, id)
    }
    fn set_source(&self, source: Arc<Ontology>) -> u64 {
        ShardedSToPSS::set_source(self, source)
    }
    fn control_epoch(&self) -> u64 {
        ShardedSToPSS::control_epoch(self)
    }
    fn publish_all(&self, events: &[Event]) -> Vec<PublishResult> {
        // The broker-shaped path: batches flow through the (possibly
        // pipelined) two-stage publish, chunk-resolving snapshots.
        self.publish_batch_detailed(events)
    }
    fn stats(&self) -> MatcherStats {
        ShardedSToPSS::stats(self)
    }
}

/// What a concurrent replay proved, for the caller's sanity asserts.
#[derive(Clone, Copy, Debug)]
pub struct ConcurrentChurnSummary {
    /// Events published by the racing publisher threads.
    pub publishes: usize,
    /// Control ops (subscribe/unsubscribe/ontology-swap) applied
    /// concurrently with them.
    pub control_ops: usize,
    /// Publications whose epoch fell strictly inside the control stream —
    /// evidence the run really interleaved rather than degenerating into
    /// publish-everything-then-mutate (or the reverse).
    pub mid_stream_publishes: usize,
}

/// Publisher batch size for the concurrent harness: larger than the
/// matcher's pipeline chunk so sharded configs with overlap enabled
/// exercise the chunk-granular snapshot resolution mid-batch.
const CONCURRENT_BATCH: usize = 48;

fn run_concurrent<M: LiveMatcher>(
    live: &M,
    make: impl Fn() -> M,
    fixture: &Fixture,
    scenario: &ChurnScenario,
    publishers: usize,
) -> ConcurrentChurnSummary {
    let control_ops: Vec<ChurnOp> =
        scenario.ops.iter().filter(|op| !matches!(op, ChurnOp::Publish(_))).cloned().collect();
    let publish_events: Vec<Event> = scenario
        .ops
        .iter()
        .filter_map(|op| match op {
            ChurnOp::Publish(idx) => Some(fixture.publications[*idx].clone()),
            _ => None,
        })
        .collect();
    assert!(publishers > 0 && !publish_events.is_empty());
    let share = publish_events.len().div_ceil(publishers);
    let initial = live.control_epoch();

    // Race: one control thread linearizes the mutations while publisher
    // threads hammer the same live matcher.
    let (control_epochs, records) = std::thread::scope(|scope| {
        let control = scope.spawn(|| {
            let mut epochs = Vec::with_capacity(control_ops.len());
            for op in &control_ops {
                let epoch = match op {
                    ChurnOp::Subscribe(sub) => live.subscribe(sub.clone()),
                    ChurnOp::Unsubscribe(id) => {
                        live.unsubscribe(*id).expect("churn streams only drop live ids")
                    }
                    ChurnOp::SetOntology(idx) => live.set_source(scenario.ontologies[*idx].clone()),
                    ChurnOp::Publish(_) => unreachable!("filtered above"),
                };
                epochs.push(epoch);
                // Widen the interleaving window between mutations.
                std::thread::yield_now();
            }
            epochs
        });
        let handles: Vec<_> = publish_events
            .chunks(share)
            .map(|events| {
                scope.spawn(move || {
                    let mut out = Vec::with_capacity(events.len());
                    for batch in events.chunks(CONCURRENT_BATCH) {
                        out.extend(live.publish_all(batch));
                    }
                    out
                })
            })
            .collect();
        let epochs = control.join().expect("control thread");
        // Flatten thread-by-thread: (thread, local index) gives the
        // deterministic within-epoch order used by the linearized replay.
        let mut records: Vec<(usize, PublishResult)> = Vec::new();
        for (t, handle) in handles.into_iter().enumerate() {
            for (i, result) in handle.join().expect("publisher thread").into_iter().enumerate() {
                records.push((t * share + i, result));
            }
        }
        (epochs, records)
    });

    // Epochs from a single control thread over an otherwise-quiescent
    // control plane must be consecutive — the linearization backbone.
    for (i, epoch) in control_epochs.iter().enumerate() {
        assert_eq!(*epoch, initial + i as u64 + 1, "control op {i} skipped or reused an epoch");
    }

    // State after the first `k` control ops, for k = 0..=n.
    struct ChurnState {
        live: Vec<Subscription>,
        source: Arc<Ontology>,
    }
    let mut states = Vec::with_capacity(control_ops.len() + 1);
    let mut live_subs: Vec<Subscription> = Vec::new();
    let mut source = fixture.source.clone();
    states.push(ChurnState { live: live_subs.clone(), source: source.clone() });
    for op in &control_ops {
        match op {
            ChurnOp::Subscribe(sub) => live_subs.push(sub.clone()),
            ChurnOp::Unsubscribe(id) => {
                let idx = live_subs.iter().position(|s| s.id() == *id).expect("live id");
                live_subs.swap_remove(idx);
            }
            ChurnOp::SetOntology(idx) => source = scenario.ontologies[*idx].clone(),
            ChurnOp::Publish(_) => unreachable!("filtered above"),
        }
        states.push(ChurnState { live: live_subs.clone(), source: source.clone() });
    }

    // Differential 1 — per-publication oracle: a publication stamped with
    // epoch `e` must match exactly what a fresh matcher holding the state
    // after `e - initial` control ops produces, provenance included.
    let mut mid_stream = 0usize;
    let mut by_prefix: Vec<Vec<&(usize, PublishResult)>> = Vec::new();
    by_prefix.resize_with(states.len(), Vec::new);
    for record in &records {
        let (pos, result) = record;
        let prefix = (result.epoch - initial) as usize;
        assert!(prefix < states.len(), "publish at {pos} stamped with an unknown epoch");
        if prefix > 0 && prefix < control_ops.len() {
            mid_stream += 1;
        }
        by_prefix[prefix].push(record);
        let state = &states[prefix];
        let oracle = make();
        oracle.set_source(state.source.clone());
        for sub in &state.live {
            oracle.subscribe(sub.clone());
        }
        let expected = oracle
            .publish_all(std::slice::from_ref(&publish_events[*pos]))
            .pop()
            .expect("one result");
        assert_eq!(
            canonical(result.matches.clone()),
            canonical(expected.matches),
            "publish at {pos} (epoch {}) diverged from the sequential oracle",
            result.epoch
        );
    }

    // Differential 2 — linearized stream replay: feeding the control ops
    // and the epoch-placed publications to a fresh live matcher, in
    // linearization order, reproduces every match set and the live
    // matcher's final statistics byte-for-byte.
    let replay = make();
    let replay_publish = |prefix: usize| {
        for (pos, recorded) in &by_prefix[prefix] {
            let got = replay
                .publish_all(std::slice::from_ref(&publish_events[*pos]))
                .pop()
                .expect("one result");
            assert_eq!(
                canonical(got.matches),
                canonical(recorded.matches.clone()),
                "linearized replay diverged at publish {pos}"
            );
        }
    };
    replay_publish(0);
    for (k, op) in control_ops.iter().enumerate() {
        let epoch = match op {
            ChurnOp::Subscribe(sub) => replay.subscribe(sub.clone()),
            ChurnOp::Unsubscribe(id) => replay.unsubscribe(*id).expect("live id"),
            ChurnOp::SetOntology(idx) => replay.set_source(scenario.ontologies[*idx].clone()),
            ChurnOp::Publish(_) => unreachable!("filtered above"),
        };
        assert_eq!(epoch, control_epochs[k], "replayed control op re-derives the same epoch");
        replay_publish(k + 1);
    }
    assert_eq!(
        replay.stats(),
        live.stats(),
        "linearized replay must reproduce the live matcher's statistics exactly"
    );

    ConcurrentChurnSummary {
        publishes: records.len(),
        control_ops: control_ops.len(),
        mid_stream_publishes: mid_stream,
    }
}

/// Runs the scenario's control ops on one thread racing `publishers`
/// publisher threads against a live single-threaded matcher, then proves
/// the execution linearizable (see the module docs). Panics on any
/// divergence; returns a summary for sanity asserts.
pub fn replay_concurrent(
    fixture: &Fixture,
    scenario: &ChurnScenario,
    config: Config,
    publishers: usize,
) -> ConcurrentChurnSummary {
    let live = SToPSS::new(config, fixture.source.clone(), fixture.interner.clone());
    run_concurrent(
        &live,
        || SToPSS::new(config, fixture.source.clone(), fixture.interner.clone()),
        fixture,
        scenario,
        publishers,
    )
}

/// [`replay_concurrent`] over the sharded backend (shard count — and the
/// pipelined/barrier batch path, via `parallelism` — from `config`).
pub fn replay_concurrent_sharded(
    fixture: &Fixture,
    scenario: &ChurnScenario,
    config: Config,
    publishers: usize,
) -> ConcurrentChurnSummary {
    let live = ShardedSToPSS::new(config, fixture.source.clone(), fixture.interner.clone());
    run_concurrent(
        &live,
        || ShardedSToPSS::new(config, fixture.source.clone(), fixture.interner.clone()),
        fixture,
        scenario,
        publishers,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::jobfinder_fixture;

    #[test]
    fn churn_scenarios_are_deterministic() {
        let f = jobfinder_fixture(40, 30, 7);
        for mode in [ChurnMode::UnsubscribeHeavy, ChurnMode::FlashCrowd] {
            let a = churn_scenario(&f, mode, 120, 99);
            let b = churn_scenario(&f, mode, 120, 99);
            assert_eq!(a.ops.len(), b.ops.len());
            assert_eq!(a.publishes, b.publishes);
            assert_eq!(a.ontologies.len(), b.ontologies.len());
            assert!(a.publishes > 0, "stream must contain publish ops");
            for (x, y) in a.ops.iter().zip(&b.ops) {
                match (x, y) {
                    (ChurnOp::Subscribe(s), ChurnOp::Subscribe(t)) => assert_eq!(s, t),
                    (ChurnOp::Unsubscribe(s), ChurnOp::Unsubscribe(t)) => assert_eq!(s, t),
                    (ChurnOp::Publish(s), ChurnOp::Publish(t)) => assert_eq!(s, t),
                    (ChurnOp::SetOntology(s), ChurnOp::SetOntology(t)) => assert_eq!(s, t),
                    other => panic!("op kind mismatch: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn unsubscribe_heavy_is_mutation_dominated() {
        let f = jobfinder_fixture(40, 30, 7);
        let s = churn_scenario(&f, ChurnMode::UnsubscribeHeavy, 400, 11);
        let mutations = s.ops.iter().filter(|op| !matches!(op, ChurnOp::Publish(_))).count();
        assert!(mutations * 2 > s.ops.len(), "churn ops must dominate publishes");
    }

    #[test]
    fn scenarios_carry_ontology_evolution() {
        let f = jobfinder_fixture(40, 30, 7);
        let s = churn_scenario(&f, ChurnMode::UnsubscribeHeavy, 400, 11);
        assert!(s.ontologies.len() > 1, "evolved variants are generated");
        let swaps = s.ops.iter().filter(|op| matches!(op, ChurnOp::SetOntology(_))).count();
        assert!(swaps > 0, "the stream exercises live ontology swaps");
    }

    #[test]
    fn interleaved_equals_sequential_on_jobfinder() {
        let f = jobfinder_fixture(30, 20, 5);
        let s = churn_scenario(&f, ChurnMode::FlashCrowd, 80, 3);
        let config = Config::default();
        let interleaved = replay_interleaved(&f, &s, config);
        let sequential = replay_sequential(&f, &s, config);
        assert_eq!(interleaved, sequential);
        let sharded = replay_interleaved_sharded(&f, &s, config.with_shards(4));
        assert_eq!(sharded, sequential);
    }

    #[test]
    fn concurrent_replay_smoke() {
        let f = jobfinder_fixture(25, 40, 5);
        let s = churn_scenario(&f, ChurnMode::UnsubscribeHeavy, 120, 9);
        let summary = replay_concurrent(&f, &s, Config::default(), 2);
        assert!(summary.publishes > 0 && summary.control_ops > 0);
    }
}
