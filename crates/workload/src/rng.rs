//! Deterministic pseudo-random numbers for workload generation.
//!
//! The implementation lives in [`stopss_types::rng`] so that every layer
//! of the system (workload generation, the broker's simulated transports)
//! draws from the same stream definition; this module re-exports it under
//! the historical `stopss_workload::rng` path.

pub use stopss_types::rng::{Rng, SplitMix64};

// Compile-time pin: these re-exports must stay the shared `stopss_types`
// types, not local reimplementations (which could silently fork the
// experiment streams). The golden-value stream pin itself lives with the
// implementation in `stopss_types::rng`.
const _: fn(Rng) -> stopss_types::rng::Rng = |r| r;
const _: fn(SplitMix64) -> stopss_types::rng::SplitMix64 = |s| s;
