//! Random subscription/publication generators.
//!
//! Reproduces the demo's workload generator: "a workload generator that
//! simulates many concurrent clients and companies sending their
//! subscriptions and publications … creates publications and subscriptions
//! at random" (§4). Publications model candidate resumes (specialized leaf
//! terms, alias spellings, raw facts like graduation year); subscriptions
//! model recruiter queries (general terms, range constraints). All
//! randomness flows from one seed.

use stopss_types::{Event, Operator, Predicate, SubId, Subscription, Value};

use crate::jobfinder::JobFinderDomain;
use crate::rng::Rng;
use crate::zipf::Zipf;

/// Knobs for the job-finder workload.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadConfig {
    /// Number of subscriptions.
    pub subscriptions: usize,
    /// Number of publications.
    pub publications: usize,
    /// RNG seed; equal seeds give identical workloads.
    pub seed: u64,
    /// Predicates per subscription (inclusive range).
    pub preds_per_sub: (usize, usize),
    /// Zipf skew over value choices (0 = uniform).
    pub zipf_skew: f64,
    /// Probability a subscription uses a *general* (non-leaf) term, which
    /// only the hierarchy stage can match against leaf publications.
    pub general_term_bias: f64,
    /// Probability a publication spells an attribute with a synonym alias
    /// (e.g. `school` instead of `university`).
    pub alias_bias: f64,
    /// Probability a publication reports `graduation year` instead of
    /// `professional experience` (requiring the mapping stage).
    pub mapping_bias: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            subscriptions: 1_000,
            publications: 1_000,
            seed: 2003,
            preds_per_sub: (1, 4),
            zipf_skew: 0.8,
            general_term_bias: 0.5,
            alias_bias: 0.5,
            mapping_bias: 0.4,
        }
    }
}

/// A generated workload.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Recruiter subscriptions, ids `0..n`.
    pub subscriptions: Vec<Subscription>,
    /// Candidate publications.
    pub publications: Vec<Event>,
}

/// Generates a job-finder workload. Deterministic in `config.seed`.
pub fn generate_jobfinder(domain: &JobFinderDomain, config: &WorkloadConfig) -> Workload {
    let mut rng = Rng::new(config.seed);
    let mut sub_rng = rng.fork(1);
    let mut pub_rng = rng.fork(2);
    let subscriptions = (0..config.subscriptions)
        .map(|k| generate_subscription(domain, config, &mut sub_rng, SubId(k as u64)))
        .collect();
    let publications = (0..config.publications)
        .map(|_| generate_publication(domain, config, &mut pub_rng))
        .collect();
    Workload { subscriptions, publications }
}

fn zipf_pick(rng: &mut Rng, zipf: &Zipf, items: &[stopss_types::Symbol]) -> stopss_types::Symbol {
    debug_assert_eq!(zipf.len(), items.len());
    items[zipf.sample(rng)]
}

/// One recruiter subscription: 1..=N predicates drawn from the domain's
/// query templates.
fn generate_subscription(
    domain: &JobFinderDomain,
    config: &WorkloadConfig,
    rng: &mut Rng,
    id: SubId,
) -> Subscription {
    let (lo, hi) = config.preds_per_sub;
    let n_preds = lo + rng.index(hi - lo + 1);
    // Templates are shuffled so a subscription never repeats an attribute.
    let mut templates: Vec<usize> = (0..7).collect();
    rng.shuffle(&mut templates);
    let zipf_uni = Zipf::new(domain.universities.len(), config.zipf_skew);
    let mut preds = Vec::with_capacity(n_preds);
    for template in templates.into_iter().take(n_preds) {
        let pred = match template {
            0 => Predicate::eq(
                domain.attr_university,
                zipf_pick(rng, &zipf_uni, &domain.universities),
            ),
            1 => {
                let pool = if rng.chance(config.general_term_bias) {
                    &domain.degree_generals
                } else {
                    &domain.degree_leaves
                };
                Predicate::eq(domain.attr_degree, *rng.pick(pool))
            }
            2 => {
                let pool = if rng.chance(config.general_term_bias) {
                    &domain.skill_generals
                } else {
                    &domain.skill_leaves
                };
                Predicate::eq(domain.attr_skill, *rng.pick(pool))
            }
            3 => Predicate::new(
                domain.attr_experience,
                Operator::Ge,
                Value::Int(rng.range_i64(1, 11)),
            ),
            4 => {
                // Half the salary constraints are written against the
                // generalized attribute `compensation`.
                let attr =
                    if rng.chance(0.5) { domain.attr_compensation } else { domain.attr_salary };
                Predicate::new(attr, Operator::Ge, Value::Int(rng.range_i64(3, 16) * 10_000))
            }
            5 => {
                let pool = if rng.chance(config.general_term_bias) {
                    &domain.city_generals
                } else {
                    &domain.city_leaves
                };
                Predicate::eq(domain.attr_city, *rng.pick(pool))
            }
            _ => {
                let pool = if rng.chance(config.general_term_bias) {
                    &domain.position_generals
                } else {
                    &domain.position_leaves
                };
                Predicate::eq(domain.attr_position, *rng.pick(pool))
            }
        };
        preds.push(pred);
    }
    Subscription::new(id, preds)
}

/// One candidate resume: specialized leaf terms, alias spellings, raw
/// facts that only mapping functions can relate to recruiter queries.
fn generate_publication(domain: &JobFinderDomain, config: &WorkloadConfig, rng: &mut Rng) -> Event {
    let zipf_uni = Zipf::new(domain.universities.len(), config.zipf_skew);
    let mut event = Event::with_capacity(8);

    let uni_attr =
        if rng.chance(config.alias_bias) { domain.attr_school } else { domain.attr_university };
    event.push(uni_attr, Value::Sym(zipf_pick(rng, &zipf_uni, &domain.universities)));
    event.push(domain.attr_degree, Value::Sym(*rng.pick(&domain.degree_leaves)));

    let n_skills = 1 + rng.index(3);
    for _ in 0..n_skills {
        let skill = *rng.pick(&domain.skill_leaves);
        event.push_unique(domain.attr_skill, Value::Sym(skill));
    }
    event.push(domain.attr_city, Value::Sym(*rng.pick(&domain.city_leaves)));
    event.push(domain.attr_position, Value::Sym(*rng.pick(&domain.position_leaves)));

    if rng.chance(config.mapping_bias) {
        event.push(domain.attr_graduation_year, Value::Int(rng.range_i64(1970, 2003)));
    } else {
        event.push(domain.attr_experience, Value::Int(rng.range_i64(0, 25)));
    }
    if rng.chance(0.3) {
        event.push(domain.attr_monthly_salary, Value::Int(rng.range_i64(3, 15) * 1_000));
    } else {
        event.push(domain.attr_salary, Value::Int(rng.range_i64(3, 18) * 10_000));
    }
    // Some candidates report when they started programming — the trigger
    // for the paper's mainframe inference.
    if rng.chance(0.25) {
        event.push(domain.attr_first_year, Value::Int(rng.range_i64(1960, 2000)));
    }
    event
}

#[cfg(test)]
mod tests {
    use super::*;
    use stopss_types::Interner;

    fn domain() -> (Interner, JobFinderDomain) {
        let mut i = Interner::new();
        let d = JobFinderDomain::build(&mut i);
        (i, d)
    }

    #[test]
    fn generation_is_deterministic() {
        let (_, d) = domain();
        let config = WorkloadConfig { subscriptions: 50, publications: 50, ..Default::default() };
        let w1 = generate_jobfinder(&d, &config);
        let w2 = generate_jobfinder(&d, &config);
        assert_eq!(w1.subscriptions, w2.subscriptions);
        assert_eq!(w1.publications, w2.publications);
    }

    #[test]
    fn different_seeds_differ() {
        let (_, d) = domain();
        let base = WorkloadConfig { subscriptions: 50, publications: 50, ..Default::default() };
        let w1 = generate_jobfinder(&d, &base);
        let w2 = generate_jobfinder(&d, &WorkloadConfig { seed: 7, ..base });
        assert_ne!(w1.subscriptions, w2.subscriptions);
    }

    #[test]
    fn subscriptions_respect_predicate_bounds() {
        let (_, d) = domain();
        let config = WorkloadConfig {
            subscriptions: 200,
            publications: 0,
            preds_per_sub: (2, 3),
            ..Default::default()
        };
        let w = generate_jobfinder(&d, &config);
        for sub in &w.subscriptions {
            assert!((2..=3).contains(&sub.len()), "got {}", sub.len());
            // No repeated attributes within one subscription.
            let attrs = stopss_types::distinct_attrs(sub);
            assert_eq!(attrs.len(), sub.len());
        }
    }

    #[test]
    fn publications_look_like_resumes() {
        let (_, d) = domain();
        let config = WorkloadConfig { subscriptions: 0, publications: 100, ..Default::default() };
        let w = generate_jobfinder(&d, &config);
        for event in &w.publications {
            assert!(event.len() >= 6, "resumes carry several facts: {}", event.len());
            assert!(event.has_attr(d.attr_degree));
            assert!(event.has_attr(d.attr_school) || event.has_attr(d.attr_university));
        }
    }

    #[test]
    fn biases_shift_the_mix() {
        let (_, d) = domain();
        let no_alias = WorkloadConfig {
            subscriptions: 0,
            publications: 200,
            alias_bias: 0.0,
            mapping_bias: 0.0,
            ..Default::default()
        };
        let w = generate_jobfinder(&d, &no_alias);
        assert!(w.publications.iter().all(|e| e.has_attr(d.attr_university)));
        assert!(w.publications.iter().all(|e| e.has_attr(d.attr_experience)));

        let all_alias = WorkloadConfig {
            subscriptions: 0,
            publications: 200,
            alias_bias: 1.0,
            mapping_bias: 1.0,
            ..Default::default()
        };
        let w = generate_jobfinder(&d, &all_alias);
        assert!(w.publications.iter().all(|e| e.has_attr(d.attr_school)));
        assert!(w.publications.iter().all(|e| e.has_attr(d.attr_graduation_year)));
    }

    #[test]
    fn zipf_skew_concentrates_universities() {
        let (_, d) = domain();
        let config = WorkloadConfig {
            subscriptions: 0,
            publications: 2_000,
            zipf_skew: 1.2,
            alias_bias: 0.0,
            ..Default::default()
        };
        let w = generate_jobfinder(&d, &config);
        let mut counts = vec![0usize; d.universities.len()];
        for e in &w.publications {
            if let Some(Value::Sym(u)) = e.get(d.attr_university) {
                if let Some(pos) = d.universities.iter().position(|x| x == u) {
                    counts[pos] += 1;
                }
            }
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max > min * 3, "skew should concentrate: max {max} min {min}");
    }
}
