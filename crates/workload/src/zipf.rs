//! Zipf-distributed sampling.
//!
//! Subscription popularity in pub/sub workloads is heavily skewed — a few
//! attributes/terms are referenced constantly, most rarely (the workload
//! model of Fabret et al.). This sampler draws ranks `0..n` with
//! probability ∝ 1/(rank+1)^s via an O(n) precomputed cumulative table and
//! O(log n) binary-search draws.

use crate::rng::Rng;

/// A Zipf(n, s) sampler over ranks `0..n`.
#[derive(Clone, Debug)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over `n` ranks with exponent `s` (`s = 0` is
    /// uniform; `s ≈ 1` is classic Zipf).
    ///
    /// # Panics
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0, "negative skew is not meaningful");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(s);
            cumulative.push(total);
        }
        // Normalize so the final entry is exactly 1.0.
        for c in &mut cumulative {
            *c /= total;
        }
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Zipf { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True if there is exactly one rank (degenerate sampler).
    pub fn is_empty(&self) -> bool {
        false // constructor guarantees n > 0
    }

    /// Draws a rank in `0..n`.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.next_f64();
        self.cumulative.partition_point(|&c| c < u).min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram(zipf: &Zipf, draws: usize, seed: u64) -> Vec<usize> {
        let mut rng = Rng::new(seed);
        let mut counts = vec![0usize; zipf.len()];
        for _ in 0..draws {
            counts[zipf.sample(&mut rng)] += 1;
        }
        counts
    }

    #[test]
    fn skewed_distribution_is_monotone() {
        let zipf = Zipf::new(10, 1.0);
        let counts = histogram(&zipf, 100_000, 42);
        // Rank 0 dominates and the tail decays (allow sampling noise by
        // comparing rank 0 vs rank 9 with a wide margin).
        assert!(counts[0] > counts[9] * 5, "head {} tail {}", counts[0], counts[9]);
        // Head frequency ≈ 1/H_10 ≈ 0.341.
        let head = counts[0] as f64 / 100_000.0;
        assert!((0.31..0.38).contains(&head), "head frequency {head}");
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let zipf = Zipf::new(8, 0.0);
        let counts = histogram(&zipf, 80_000, 7);
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "uniform bucket {c}");
        }
    }

    #[test]
    fn single_rank_always_samples_zero() {
        let zipf = Zipf::new(1, 1.2);
        let mut rng = Rng::new(1);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut rng), 0);
        }
    }

    #[test]
    fn samples_cover_every_rank_eventually() {
        let zipf = Zipf::new(20, 1.0);
        let counts = histogram(&zipf, 200_000, 3);
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panic() {
        let _ = Zipf::new(0, 1.0);
    }

    /// Golden pin of exact sample sequences: the market workload's
    /// hot-key skew (and its committed oracle counts) depend on this
    /// table + binary-search draw path bit-for-bit.
    #[test]
    fn golden_sample_sequences_pin_the_sampler() {
        let zipf = Zipf::new(12, 1.1);
        let mut rng = Rng::new(2003);
        let got: Vec<usize> = (0..16).map(|_| zipf.sample(&mut rng)).collect();
        assert_eq!(got, [0, 1, 1, 2, 2, 0, 0, 2, 6, 0, 1, 2, 0, 0, 1, 8]);

        let uniform = Zipf::new(5, 0.0);
        let mut rng = Rng::new(42);
        let got: Vec<usize> = (0..10).map(|_| uniform.sample(&mut rng)).collect();
        assert_eq!(got, [4, 4, 0, 3, 3, 1, 1, 0, 3, 0]);
    }
}
