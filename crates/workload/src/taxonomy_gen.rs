//! Synthetic ontology generation for scaling experiments.
//!
//! The job-finder domain is realistic but fixed-size; experiments E4, E8
//! and E9 sweep ontology *shape* — taxonomy depth and fanout, synonym
//! density, mapping chain length — which requires generated ontologies of
//! parameterized size.

use stopss_ontology::{Expr, Guard, MappingFunction, Ontology, PatternItem, Production};
use stopss_types::{Interner, Operator, Symbol, Value};

use crate::rng::Rng;

/// Shape parameters for a synthetic ontology.
#[derive(Clone, Copy, Debug)]
pub struct SyntheticConfig {
    /// Number of distinct attributes, each with its own value taxonomy.
    pub attrs: usize,
    /// Depth of every value taxonomy (root = level 0; leaves = level
    /// `depth`).
    pub depth: usize,
    /// Children per internal node.
    pub fanout: usize,
    /// Synonym aliases generated per concept (fractional: 0.5 = every
    /// other concept gets one alias).
    pub synonyms_per_concept: f64,
    /// Length of the mapping-function chain (0 = no mapping functions).
    pub mapping_chain: usize,
    /// RNG seed for alias placement.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            attrs: 4,
            depth: 3,
            fanout: 3,
            synonyms_per_concept: 0.25,
            mapping_chain: 2,
            seed: 1,
        }
    }
}

/// A generated ontology plus the handles generators need.
#[derive(Clone, Debug)]
pub struct SyntheticDomain {
    /// The ontology.
    pub ontology: Ontology,
    /// The attribute symbols (`attr0..`).
    pub attrs: Vec<Symbol>,
    /// Value concepts per attribute per level: `levels[attr][level]` holds
    /// the concepts at that depth (level 0 = the root).
    pub levels: Vec<Vec<Vec<Symbol>>>,
    /// Alias symbols, each resolving to some concept.
    pub aliases: Vec<Symbol>,
    /// Mapping chain trigger attribute (`chain0`), if any.
    pub chain_start: Option<Symbol>,
    /// Final attribute of the mapping chain.
    pub chain_end: Option<Symbol>,
}

impl SyntheticDomain {
    /// Leaf concepts of one attribute's taxonomy.
    pub fn leaves(&self, attr_idx: usize) -> &[Symbol] {
        self.levels[attr_idx].last().map_or(&[], |v| v.as_slice())
    }

    /// Concepts at a given generality level (0 = most general).
    pub fn level(&self, attr_idx: usize, level: usize) -> &[Symbol] {
        self.levels[attr_idx].get(level).map_or(&[], |v| v.as_slice())
    }

    /// Total number of value concepts.
    pub fn concept_count(&self) -> usize {
        self.levels.iter().flatten().map(Vec::len).sum()
    }
}

/// Builds a synthetic domain: `attrs` complete `fanout`-ary value trees of
/// the given depth, plus aliases and a mapping chain
/// `chain0 → chain1 → … → chainN` (each link copies the value forward,
/// exercising the fixpoint).
pub fn build_synthetic(interner: &mut Interner, config: &SyntheticConfig) -> SyntheticDomain {
    assert!(config.fanout >= 1, "fanout must be at least 1");
    let mut rng = Rng::new(config.seed);
    let mut ontology = Ontology::new("synthetic");
    let mut attrs = Vec::with_capacity(config.attrs);
    let mut levels: Vec<Vec<Vec<Symbol>>> = Vec::with_capacity(config.attrs);
    let mut aliases = Vec::new();

    for a in 0..config.attrs {
        let attr = interner.intern(&format!("attr{a}"));
        attrs.push(attr);
        let root = interner.intern(&format!("v{a}_0_0"));
        ontology.taxonomy.add_concept(root);
        let mut attr_levels: Vec<Vec<Symbol>> = vec![vec![root]];
        for d in 1..=config.depth {
            let parent_level = attr_levels[d - 1].clone();
            let mut level = Vec::with_capacity(parent_level.len() * config.fanout);
            for (p_idx, parent) in parent_level.iter().enumerate() {
                for c in 0..config.fanout {
                    let child = interner.intern(&format!("v{a}_{d}_{}", p_idx * config.fanout + c));
                    ontology.taxonomy.add_isa(child, *parent, interner).unwrap();
                    level.push(child);
                }
            }
            attr_levels.push(level);
        }
        // Aliases sprinkled over all concepts of this attribute.
        let all: Vec<Symbol> = attr_levels.iter().flatten().copied().collect();
        let n_aliases = (all.len() as f64 * config.synonyms_per_concept) as usize;
        for k in 0..n_aliases {
            let target = *rng.pick(&all);
            let alias = interner.intern(&format!("alias{a}_{k}"));
            ontology.synonyms.add_synonym(target, alias, interner).unwrap();
            aliases.push(alias);
        }
        levels.push(attr_levels);
    }

    let (mut chain_start, mut chain_end) = (None, None);
    if config.mapping_chain > 0 {
        let chain: Vec<Symbol> =
            (0..=config.mapping_chain).map(|k| interner.intern(&format!("chain{k}"))).collect();
        for (k, window) in chain.windows(2).enumerate() {
            ontology
                .mappings
                .register(MappingFunction::new(
                    format!("link{k}"),
                    vec![PatternItem {
                        attr: window[0],
                        guard: Some(Guard { op: Operator::Ge, value: Value::Int(0) }),
                    }],
                    vec![Production {
                        attr: window[1],
                        expr: Expr::add(Expr::Attr(window[0]), Expr::Const(Value::Int(1))),
                    }],
                ))
                .unwrap();
        }
        chain_start = Some(chain[0]);
        chain_end = Some(*chain.last().unwrap());
    }

    SyntheticDomain { ontology, attrs, levels, aliases, chain_start, chain_end }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stopss_ontology::SemanticSource;

    #[test]
    fn tree_shape_matches_parameters() {
        let mut i = Interner::new();
        let config = SyntheticConfig { attrs: 2, depth: 3, fanout: 2, ..Default::default() };
        let d = build_synthetic(&mut i, &config);
        assert_eq!(d.attrs.len(), 2);
        for a in 0..2 {
            assert_eq!(d.level(a, 0).len(), 1);
            assert_eq!(d.level(a, 1).len(), 2);
            assert_eq!(d.level(a, 2).len(), 4);
            assert_eq!(d.leaves(a).len(), 8);
        }
        // 1 + 2 + 4 + 8 per attribute.
        assert_eq!(d.concept_count(), 2 * 15);
    }

    #[test]
    fn leaves_reach_root_in_depth_steps() {
        let mut i = Interner::new();
        let config = SyntheticConfig { attrs: 1, depth: 4, fanout: 3, ..Default::default() };
        let d = build_synthetic(&mut i, &config);
        let root = d.level(0, 0)[0];
        for leaf in d.leaves(0) {
            assert_eq!(d.ontology.distance(*leaf, root), Some(4));
        }
    }

    #[test]
    fn aliases_resolve_into_the_taxonomy() {
        let mut i = Interner::new();
        let config = SyntheticConfig {
            attrs: 2,
            depth: 2,
            fanout: 3,
            synonyms_per_concept: 1.0,
            ..Default::default()
        };
        let d = build_synthetic(&mut i, &config);
        assert!(!d.aliases.is_empty());
        for alias in &d.aliases {
            let root = d.ontology.resolve_synonym(*alias);
            assert_ne!(root, *alias, "aliases must resolve to a concept");
            assert!(d.ontology.taxonomy.contains(root));
        }
    }

    #[test]
    fn mapping_chain_links_fire_in_sequence() {
        use stopss_types::Event;
        let mut i = Interner::new();
        let config = SyntheticConfig { mapping_chain: 3, ..Default::default() };
        let d = build_synthetic(&mut i, &config);
        let start = d.chain_start.unwrap();
        let event = Event::new().with(start, Value::Int(0));
        let mut fired = Vec::new();
        d.ontology.apply_mappings(&event, &i, 0, &mut |name, _| fired.push(name.to_owned()));
        assert_eq!(fired, vec!["link0".to_owned()], "only the first link fires directly");
    }

    #[test]
    fn generation_is_deterministic() {
        let mut i1 = Interner::new();
        let mut i2 = Interner::new();
        let config = SyntheticConfig::default();
        let d1 = build_synthetic(&mut i1, &config);
        let d2 = build_synthetic(&mut i2, &config);
        assert_eq!(d1.aliases, d2.aliases);
        assert_eq!(d1.concept_count(), d2.concept_count());
    }
}
