//! Ready-to-run experiment fixtures.
//!
//! A [`Fixture`] bundles everything a bench or the experiments binary
//! needs: a shared interner, a semantic source, and a deterministic
//! workload. Construction helpers cover the two experiment families —
//! the realistic job-finder domain and parameterized synthetic domains.

use stopss_types::sync::Arc;

use stopss_core::{Config, Match, SToPSS, ShardedSToPSS};
use stopss_ontology::Ontology;
use stopss_types::{
    Event, Interner, Operator, Predicate, SharedInterner, SubId, Subscription, Value,
};

use crate::generator::{generate_jobfinder, WorkloadConfig};
use crate::geo::{generate_geo, GeoDomain, GeoWorkloadConfig};
use crate::iot::{generate_iot, IotDomain, IotWorkloadConfig};
use crate::jobfinder::JobFinderDomain;
use crate::market::{generate_market, MarketDomain, MarketWorkloadConfig};
use crate::rng::Rng;
use crate::taxonomy_gen::{build_synthetic, SyntheticConfig, SyntheticDomain};

/// A complete, deterministic experiment input.
pub struct Fixture {
    /// Interner shared by ontology, subscriptions and events.
    pub interner: SharedInterner,
    /// The semantic knowledge source.
    pub source: Arc<Ontology>,
    /// Subscriptions to register.
    pub subscriptions: Vec<Subscription>,
    /// Publications to feed.
    pub publications: Vec<Event>,
}

impl Fixture {
    /// The fixture's publications in contiguous batches of `batch_size`
    /// (the last batch may be shorter; a size of 0 means 1). The unit the
    /// sharded matcher's `publish_batch` fans out per worker round.
    pub fn publication_batches(&self, batch_size: usize) -> std::slice::Chunks<'_, Event> {
        self.publications.chunks(batch_size.max(1))
    }

    /// Builds a single-threaded matcher over this fixture's ontology with
    /// every subscription registered.
    pub fn matcher(&self, config: Config) -> SToPSS {
        let matcher = SToPSS::new(config, self.source.clone(), self.interner.clone());
        for sub in &self.subscriptions {
            matcher.subscribe(sub.clone());
        }
        matcher
    }

    /// Builds a sharded matcher (shard count from `config.shards`) over
    /// this fixture's ontology with every subscription registered.
    pub fn sharded_matcher(&self, config: Config) -> ShardedSToPSS {
        let matcher = ShardedSToPSS::new(config, self.source.clone(), self.interner.clone());
        for sub in &self.subscriptions {
            matcher.subscribe(sub.clone());
        }
        matcher
    }

    /// Feeds every publication through `matcher.publish_batch` in batches
    /// of `batch_size`, returning the match set of each publication in
    /// publication order — the batch-feed entry point for benches and the
    /// differential suites.
    pub fn feed_batches(&self, matcher: &ShardedSToPSS, batch_size: usize) -> Vec<Vec<Match>> {
        let mut out = Vec::with_capacity(self.publications.len());
        for batch in self.publication_batches(batch_size) {
            out.extend(matcher.publish_batch(batch));
        }
        out
    }
}

/// Builds the job-finder fixture used by experiments E1–E3 and E6.
pub fn jobfinder_fixture(subscriptions: usize, publications: usize, seed: u64) -> Fixture {
    let mut interner = Interner::new();
    let domain = JobFinderDomain::build(&mut interner);
    let config = WorkloadConfig { subscriptions, publications, seed, ..Default::default() };
    let workload = generate_jobfinder(&domain, &config);
    Fixture {
        interner: SharedInterner::from_interner(interner),
        source: Arc::new(domain.ontology),
        subscriptions: workload.subscriptions,
        publications: workload.publications,
    }
}

/// Builds the job-finder fixture with custom workload knobs.
pub fn jobfinder_fixture_with(config: &WorkloadConfig) -> Fixture {
    let mut interner = Interner::new();
    let domain = JobFinderDomain::build(&mut interner);
    let workload = generate_jobfinder(&domain, config);
    Fixture {
        interner: SharedInterner::from_interner(interner),
        source: Arc::new(domain.ontology),
        subscriptions: workload.subscriptions,
        publications: workload.publications,
    }
}

/// Builds the IoT/telemetry fixture (shallow taxonomy, event-heavy).
pub fn iot_fixture(subscriptions: usize, publications: usize, seed: u64) -> Fixture {
    let mut interner = Interner::new();
    let domain = IotDomain::build(&mut interner);
    let config = IotWorkloadConfig { subscriptions, publications, seed, ..Default::default() };
    let workload = generate_iot(&domain, &config);
    Fixture {
        interner: SharedInterner::from_interner(interner),
        source: Arc::new(domain.ontology),
        subscriptions: workload.subscriptions,
        publications: workload.publications,
    }
}

/// Builds the market-data fixture (numeric-heavy, Zipf hot-key skew).
pub fn market_fixture(subscriptions: usize, publications: usize, seed: u64) -> Fixture {
    let mut interner = Interner::new();
    let domain = MarketDomain::build(&mut interner);
    let config = MarketWorkloadConfig { subscriptions, publications, seed, ..Default::default() };
    let workload = generate_market(&domain, &config);
    Fixture {
        interner: SharedInterner::from_interner(interner),
        source: Arc::new(domain.ontology),
        subscriptions: workload.subscriptions,
        publications: workload.publications,
    }
}

/// Builds the geo/alerting fixture (deep hierarchy, mapping-heavy).
pub fn geo_fixture(subscriptions: usize, publications: usize, seed: u64) -> Fixture {
    let mut interner = Interner::new();
    let domain = GeoDomain::build(&mut interner);
    let config = GeoWorkloadConfig { subscriptions, publications, seed, ..Default::default() };
    let workload = generate_geo(&domain, &config);
    Fixture {
        interner: SharedInterner::from_interner(interner),
        source: Arc::new(domain.ontology),
        subscriptions: workload.subscriptions,
        publications: workload.publications,
    }
}

/// Workload knobs for synthetic fixtures.
#[derive(Clone, Copy, Debug)]
pub struct SyntheticWorkload {
    /// Number of subscriptions.
    pub subscriptions: usize,
    /// Number of publications.
    pub publications: usize,
    /// Predicates per subscription.
    pub preds_per_sub: usize,
    /// Pairs per publication.
    pub pairs_per_event: usize,
    /// Probability a subscription's term is general (drawn from an upper
    /// taxonomy level) rather than a leaf.
    pub general_term_bias: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticWorkload {
    fn default() -> Self {
        SyntheticWorkload {
            subscriptions: 1_000,
            publications: 1_000,
            preds_per_sub: 2,
            pairs_per_event: 3,
            general_term_bias: 0.6,
            seed: 9,
        }
    }
}

/// Builds a synthetic fixture: publications carry leaf terms, and
/// subscriptions reference terms at random levels (biased general), so
/// match rates track taxonomy shape. Used by E4, E8 and E9.
pub fn synthetic_fixture(shape: &SyntheticConfig, workload: &SyntheticWorkload) -> Fixture {
    let mut interner = Interner::new();
    let domain = build_synthetic(&mut interner, shape);
    let mut rng = Rng::new(workload.seed);
    let mut sub_rng = rng.fork(1);
    let mut pub_rng = rng.fork(2);

    let subscriptions = (0..workload.subscriptions)
        .map(|k| synthetic_subscription(&domain, workload, &mut sub_rng, SubId(k as u64)))
        .collect();
    let publications = (0..workload.publications)
        .map(|_| synthetic_publication(&domain, workload, &mut pub_rng))
        .collect();

    Fixture {
        interner: SharedInterner::from_interner(interner),
        source: Arc::new(domain.ontology),
        subscriptions,
        publications,
    }
}

fn synthetic_subscription(
    domain: &SyntheticDomain,
    workload: &SyntheticWorkload,
    rng: &mut Rng,
    id: SubId,
) -> Subscription {
    let mut attr_order: Vec<usize> = (0..domain.attrs.len()).collect();
    rng.shuffle(&mut attr_order);
    let mut preds = Vec::with_capacity(workload.preds_per_sub);
    for &attr_idx in attr_order.iter().take(workload.preds_per_sub) {
        let n_levels = domain.levels[attr_idx].len();
        let level = if rng.chance(workload.general_term_bias) {
            // General: any non-leaf level, root included.
            rng.index(n_levels.saturating_sub(1).max(1))
        } else {
            n_levels - 1
        };
        let term = *rng.pick(domain.level(attr_idx, level));
        preds.push(Predicate::eq(domain.attrs[attr_idx], term));
    }
    Subscription::new(id, preds)
}

fn synthetic_publication(
    domain: &SyntheticDomain,
    workload: &SyntheticWorkload,
    rng: &mut Rng,
) -> Event {
    let mut attr_order: Vec<usize> = (0..domain.attrs.len()).collect();
    rng.shuffle(&mut attr_order);
    let mut event = Event::with_capacity(workload.pairs_per_event + 1);
    for &attr_idx in attr_order.iter().take(workload.pairs_per_event) {
        // Publications may use alias spellings where available.
        let leaf = *rng.pick(domain.leaves(attr_idx));
        event.push(domain.attrs[attr_idx], Value::Sym(leaf));
    }
    if let Some(chain_start) = domain.chain_start {
        if rng.chance(0.3) {
            event.push(chain_start, Value::Int(rng.range_i64(0, 100)));
        }
    }
    event
}

/// A subscription matching events whose chain-end attribute exists — used
/// to measure mapping-chain depth effects.
pub fn chain_subscription(domain: &SyntheticDomain, id: SubId) -> Option<Subscription> {
    domain.chain_end.map(|end| {
        Subscription::new(id, vec![Predicate::new(end, Operator::Exists, Value::Bool(true))])
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_feed_equals_per_event_publish() {
        let f = jobfinder_fixture(80, 40, 13);
        let config = Config::default().with_shards(4);
        let single = f.matcher(config);
        let sharded = f.sharded_matcher(config);
        let want: Vec<Vec<Match>> = f.publications.iter().map(|e| single.publish(e)).collect();
        let got = f.feed_batches(&sharded, 7);
        assert_eq!(got, want);
        assert_eq!(f.publication_batches(7).count(), 40usize.div_ceil(7));
        assert_eq!(f.publication_batches(0).count(), 40, "batch size 0 clamps to 1");
    }

    #[test]
    fn jobfinder_fixture_is_complete_and_deterministic() {
        let f1 = jobfinder_fixture(100, 100, 42);
        let f2 = jobfinder_fixture(100, 100, 42);
        assert_eq!(f1.subscriptions.len(), 100);
        assert_eq!(f1.publications.len(), 100);
        assert_eq!(f1.subscriptions, f2.subscriptions);
        assert_eq!(f1.publications, f2.publications);
        assert!(f1.interner.len() > 50);
    }

    #[test]
    fn synthetic_fixture_respects_shape() {
        let shape = SyntheticConfig { attrs: 3, depth: 2, fanout: 2, ..Default::default() };
        let workload = SyntheticWorkload {
            subscriptions: 50,
            publications: 50,
            preds_per_sub: 2,
            pairs_per_event: 3,
            ..Default::default()
        };
        let f = synthetic_fixture(&shape, &workload);
        assert_eq!(f.subscriptions.len(), 50);
        for sub in &f.subscriptions {
            assert_eq!(sub.len(), 2);
        }
        for event in &f.publications {
            assert!(event.len() >= 3);
        }
    }

    #[test]
    fn synthetic_matching_produces_semantic_uplift() {
        use stopss_core::{Config, SToPSS, StageMask};
        let shape = SyntheticConfig { attrs: 3, depth: 3, fanout: 2, ..Default::default() };
        let workload = SyntheticWorkload {
            subscriptions: 100,
            publications: 100,
            general_term_bias: 0.8,
            ..Default::default()
        };
        let f = synthetic_fixture(&shape, &workload);

        let count = |config: Config| {
            let matcher = SToPSS::new(config, f.source.clone(), f.interner.clone());
            for s in &f.subscriptions {
                matcher.subscribe(s.clone());
            }
            f.publications.iter().map(|e| matcher.publish(e).len()).sum::<usize>()
        };
        let syntactic = count(Config::syntactic().with_provenance(false));
        let semantic = count(
            Config::default()
                .with_stages(StageMask::SYNONYM.with(StageMask::HIERARCHY))
                .with_provenance(false),
        );
        assert!(
            semantic > syntactic,
            "hierarchy must unlock general-term matches: semantic {semantic} vs syntactic {syntactic}"
        );
    }

    #[test]
    fn chain_subscription_requires_full_chain() {
        use stopss_core::{Config, SToPSS};
        let shape = SyntheticConfig { mapping_chain: 3, attrs: 1, ..Default::default() };
        let mut interner = Interner::new();
        let domain = build_synthetic(&mut interner, &shape);
        let sub = chain_subscription(&domain, SubId(1)).unwrap();
        let start = domain.chain_start.unwrap();
        let source = Arc::new(domain.ontology.clone());
        let matcher =
            SToPSS::new(Config::default(), source, SharedInterner::from_interner(interner));
        matcher.subscribe(sub);
        let event = Event::new().with(start, Value::Int(5));
        let matches = matcher.publish(&event);
        assert_eq!(matches.len(), 1, "the 3-link chain must fire transitively");
    }
}
