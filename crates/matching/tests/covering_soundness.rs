//! Covering-relation soundness against a real engine.
//!
//! `covers(g, s)` is the broker's license to prune subscription `s` while
//! `g` is registered — it must therefore never prune a real match: every
//! generated event matched by `s` under [`NaiveEngine`] (the correctness
//! baseline engine) must also be matched by `g`. This complements the
//! `covering_is_sound` property in `engine_equivalence.rs`, which checks
//! the same implication against `Subscription::matches` directly; going
//! through the engine additionally pins down that pruning composes with
//! how engines actually report matches (insert/remove/match_event), and
//! that `cover_heads` keeps a set of heads that preserves event coverage.

use proptest::prelude::*;

use stopss_matching::{collect_matches, cover_heads, covers, MatchingEngine, NaiveEngine};
use stopss_types::{Event, Interner, Operator, Predicate, SubId, Subscription, Symbol, Value};

const ATTRS: usize = 5;
const TERMS: usize = 6;

fn fixture_interner() -> Interner {
    let mut interner = Interner::new();
    for a in 0..ATTRS {
        interner.intern(&format!("attr{a}"));
    }
    for t in 0..TERMS {
        interner.intern(&format!("term{t}"));
    }
    interner
}

fn attr_sym(i: usize) -> Symbol {
    Symbol::from_index(i % ATTRS)
}

fn term_sym(i: usize) -> Symbol {
    Symbol::from_index(ATTRS + (i % TERMS))
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-4i64..4).prop_map(Value::Int),
        (-4i64..4).prop_map(|i| Value::Float(i as f64 / 2.0)),
        (0usize..TERMS).prop_map(|t| Value::Sym(term_sym(t))),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn arb_operator() -> impl Strategy<Value = Operator> {
    prop_oneof![
        Just(Operator::Eq),
        Just(Operator::Ne),
        Just(Operator::Lt),
        Just(Operator::Le),
        Just(Operator::Gt),
        Just(Operator::Ge),
        Just(Operator::Exists),
        Just(Operator::Prefix),
        Just(Operator::Suffix),
        Just(Operator::Contains),
    ]
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    (0usize..ATTRS, arb_operator(), arb_value())
        .prop_map(|(a, op, value)| Predicate::new(attr_sym(a), op, value))
}

fn arb_subscriptions() -> impl Strategy<Value = Vec<Subscription>> {
    proptest::collection::vec(proptest::collection::vec(arb_predicate(), 0..4), 2..16).prop_map(
        |pred_lists| {
            pred_lists
                .into_iter()
                .enumerate()
                .map(|(k, preds)| Subscription::new(SubId(k as u64 + 1), preds))
                .collect()
        },
    )
}

fn arb_event() -> impl Strategy<Value = Event> {
    proptest::collection::vec((0usize..ATTRS, arb_value()), 0..6)
        .prop_map(|pairs| pairs.into_iter().map(|(a, v)| (attr_sym(a), v)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Whenever `covers(g, s)` holds, every event the naive engine
    /// reports as matching `s` is also reported as matching `g`:
    /// covering never prunes a real match.
    #[test]
    fn covering_never_prunes_engine_matches(
        subs in arb_subscriptions(),
        events in proptest::collection::vec(arb_event(), 1..12),
    ) {
        let interner = fixture_interner();
        let mut engine = NaiveEngine::new();
        for s in &subs {
            engine.insert(s.clone());
        }
        for event in &events {
            let matched = collect_matches(&mut engine, event, &interner);
            for g in &subs {
                for s in &subs {
                    if covers(g, s, &interner) && matched.binary_search(&s.id()).is_ok() {
                        prop_assert!(
                            matched.binary_search(&g.id()).is_ok(),
                            "covers({}, {}) pruned a real match on {}",
                            g.id(), s.id(), event.display(&interner)
                        );
                    }
                }
            }
        }
    }

    /// `cover_heads` pruning preserves coverage: an engine holding only
    /// the heads matches an event if and only if the engine holding all
    /// subscriptions matched it (coverage as "some subscriber fires", the
    /// property a forwarding broker relies on).
    #[test]
    fn cover_heads_preserve_event_coverage(
        subs in arb_subscriptions(),
        events in proptest::collection::vec(arb_event(), 1..12),
    ) {
        let interner = fixture_interner();
        let (heads, pruned) = cover_heads(&subs, &interner);
        prop_assert_eq!(heads.len() + pruned.len(), subs.len());

        let mut full = NaiveEngine::new();
        for s in &subs {
            full.insert(s.clone());
        }
        let mut pruned_engine = NaiveEngine::new();
        for h in &heads {
            pruned_engine.insert((*h).clone());
        }
        for event in &events {
            let all = collect_matches(&mut full, event, &interner);
            let only_heads = collect_matches(&mut pruned_engine, event, &interner);
            prop_assert_eq!(
                !all.is_empty(),
                !only_heads.is_empty(),
                "pruning to cover heads changed whether {} is delivered",
                event.display(&interner)
            );
            // Every head match is a real match.
            for id in &only_heads {
                prop_assert!(all.binary_search(id).is_ok());
            }
        }
    }
}
