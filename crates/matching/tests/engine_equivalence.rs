//! Differential testing: every engine must produce exactly the match set
//! of the ground-truth relation `Subscription::matches`, on randomized
//! workloads covering all operators, multi-valued events, and churn
//! (removals between publications).

use proptest::prelude::*;

use stopss_matching::{collect_matches, EngineKind};
use stopss_types::{Event, Interner, Operator, Predicate, SubId, Subscription, Symbol, Value};

/// Fixed, small vocabularies keep collision probability high enough that
/// matches actually happen.
const ATTRS: usize = 6;
const TERMS: usize = 8;

fn fixture_interner() -> Interner {
    let mut interner = Interner::new();
    for a in 0..ATTRS {
        interner.intern(&format!("attr{a}"));
    }
    for t in 0..TERMS {
        interner.intern(&format!("term{t}"));
    }
    interner
}

fn attr_sym(i: usize) -> Symbol {
    Symbol::from_index(i % ATTRS)
}

fn term_sym(i: usize) -> Symbol {
    Symbol::from_index(ATTRS + (i % TERMS))
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-5i64..5).prop_map(Value::Int),
        (-5i64..5).prop_map(|i| Value::Float(i as f64 / 2.0)),
        (0usize..TERMS).prop_map(|t| Value::Sym(term_sym(t))),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn arb_operator() -> impl Strategy<Value = Operator> {
    prop_oneof![
        Just(Operator::Eq),
        Just(Operator::Ne),
        Just(Operator::Lt),
        Just(Operator::Le),
        Just(Operator::Gt),
        Just(Operator::Ge),
        Just(Operator::Exists),
        Just(Operator::Prefix),
        Just(Operator::Suffix),
        Just(Operator::Contains),
    ]
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    (0usize..ATTRS, arb_operator(), arb_value())
        .prop_map(|(a, op, value)| Predicate::new(attr_sym(a), op, value))
}

fn arb_subscription(id: u64) -> impl Strategy<Value = Subscription> {
    proptest::collection::vec(arb_predicate(), 0..5)
        .prop_map(move |preds| Subscription::new(SubId(id), preds))
}

fn arb_subscriptions() -> impl Strategy<Value = Vec<Subscription>> {
    proptest::collection::vec(0u64..1, 1..25).prop_flat_map(|seeds| {
        let strategies: Vec<_> =
            (0..seeds.len()).map(|k| arb_subscription(k as u64).boxed()).collect();
        strategies
    })
}

fn arb_event() -> impl Strategy<Value = Event> {
    proptest::collection::vec((0usize..ATTRS, arb_value()), 0..6)
        .prop_map(|pairs| pairs.into_iter().map(|(a, v)| (attr_sym(a), v)).collect())
}

fn oracle(subs: &[Subscription], event: &Event, interner: &Interner) -> Vec<SubId> {
    let mut out: Vec<SubId> =
        subs.iter().filter(|s| s.matches(event, interner)).map(|s| s.id()).collect();
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn engines_agree_with_ground_truth(
        subs in arb_subscriptions(),
        events in proptest::collection::vec(arb_event(), 1..10),
    ) {
        let interner = fixture_interner();
        for kind in EngineKind::ALL {
            let mut engine = kind.build();
            for s in &subs {
                engine.insert(s.clone());
            }
            prop_assert_eq!(engine.len(), subs.len());
            for event in &events {
                let got = collect_matches(engine.as_mut(), event, &interner);
                let want = oracle(&subs, event, &interner);
                prop_assert_eq!(&got, &want, "engine {} diverged", kind.name());
            }
        }
    }

    #[test]
    fn engines_agree_under_churn(
        subs in arb_subscriptions(),
        remove_mask in proptest::collection::vec(any::<bool>(), 25),
        events in proptest::collection::vec(arb_event(), 1..6),
    ) {
        let interner = fixture_interner();
        let survivors: Vec<Subscription> = subs
            .iter()
            .enumerate()
            .filter(|(k, _)| !remove_mask.get(*k).copied().unwrap_or(false))
            .map(|(_, s)| s.clone())
            .collect();
        for kind in EngineKind::ALL {
            let mut engine = kind.build();
            for s in &subs {
                engine.insert(s.clone());
            }
            for (k, s) in subs.iter().enumerate() {
                if remove_mask.get(k).copied().unwrap_or(false) {
                    prop_assert!(engine.remove(s.id()));
                }
            }
            prop_assert_eq!(engine.len(), survivors.len());
            for event in &events {
                let got = collect_matches(engine.as_mut(), event, &interner);
                let want = oracle(&survivors, event, &interner);
                prop_assert_eq!(&got, &want, "engine {} diverged after churn", kind.name());
            }
        }
    }

    #[test]
    fn reinsertion_after_clear_is_clean(
        subs in arb_subscriptions(),
        event in arb_event(),
    ) {
        let interner = fixture_interner();
        for kind in EngineKind::ALL {
            let mut engine = kind.build();
            for s in &subs {
                engine.insert(s.clone());
            }
            engine.clear();
            prop_assert!(engine.is_empty());
            for s in &subs {
                engine.insert(s.clone());
            }
            let got = collect_matches(engine.as_mut(), &event, &interner);
            let want = oracle(&subs, &event, &interner);
            prop_assert_eq!(&got, &want, "engine {} diverged after clear", kind.name());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Covering soundness: whenever `covers(G, S)` holds, every event
    /// matched by S is matched by G — on arbitrary generated predicates
    /// (all ten operators) and multi-valued events.
    #[test]
    fn covering_is_sound(
        subs in arb_subscriptions(),
        events in proptest::collection::vec(arb_event(), 1..10),
    ) {
        let interner = fixture_interner();
        for g in &subs {
            for s in &subs {
                if stopss_matching::covers(g, s, &interner) {
                    for event in &events {
                        prop_assert!(
                            !s.matches(event, &interner) || g.matches(event, &interner),
                            "covers({}, {}) violated on {}",
                            g.id(), s.id(), event.display(&interner)
                        );
                    }
                }
            }
        }
    }

    /// `implies` soundness at the predicate level, against direct
    /// evaluation over generated values.
    #[test]
    fn implication_is_sound(
        p in arb_predicate(),
        q in arb_predicate(),
        values in proptest::collection::vec(arb_value(), 1..20),
    ) {
        let interner = fixture_interner();
        if stopss_matching::implies(&p, &q, &interner) {
            for v in &values {
                prop_assert!(
                    !p.eval(v, &interner) || q.eval(v, &interner),
                    "{} implies {} violated on {:?}",
                    p.display(&interner), q.display(&interner), v
                );
            }
        }
    }
}
