//! # stopss-matching
//!
//! Content-based (syntactic) publish/subscribe matching engines — the
//! substrate the S-ToPSS paper extends with semantics. The paper cites the
//! counting algorithm of Aguilera et al. (PODC'99) and the predicate
//! indexing / clustering of Fabret et al. (SIGMOD'01); this crate
//! implements both families plus a linear-scan baseline and a
//! subscription-trie variant:
//!
//! * [`NaiveEngine`] — linear scan, the correctness baseline;
//! * [`CountingEngine`] — shared predicate table, per-attribute indexes,
//!   epoch-stamped counters;
//! * [`ClusterEngine`] — access-predicate clustering;
//! * [`TrieEngine`] — canonicalized subscription trie ("matching tree").
//!
//! All engines implement [`MatchingEngine`] and are interchangeable; the
//! semantic layer in `stopss-core` treats them as black boxes, exactly as
//! the paper prescribes ("minimize the changes to the algorithms").
//!
//! [`covering`] adds the classic subscription-covering relation (is every
//! event matching S guaranteed to match G?) used by brokers to prune
//! redundant subscriptions.

#![warn(missing_docs)]

pub mod cluster;
pub mod counting;
pub mod covering;
pub mod engine;
mod index;
pub mod naive;
pub mod trie;

pub use cluster::ClusterEngine;
pub use counting::CountingEngine;
pub use covering::{cover_heads, covers, implies};
pub use engine::{collect_matches, MatchingEngine};
pub use naive::NaiveEngine;
pub use trie::TrieEngine;

/// The available engine implementations, for configuration surfaces and
/// benchmark sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Linear scan over all subscriptions.
    Naive,
    /// Counting algorithm with per-attribute predicate indexes.
    Counting,
    /// Access-predicate clustering.
    Cluster,
    /// Canonicalized subscription trie.
    Trie,
}

impl EngineKind {
    /// All engine kinds, for sweeps.
    pub const ALL: [EngineKind; 4] =
        [EngineKind::Naive, EngineKind::Counting, EngineKind::Cluster, EngineKind::Trie];

    /// Stable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Naive => "naive",
            EngineKind::Counting => "counting",
            EngineKind::Cluster => "cluster",
            EngineKind::Trie => "trie",
        }
    }

    /// Instantiates an empty engine of this kind.
    pub fn build(self) -> Box<dyn MatchingEngine> {
        match self {
            EngineKind::Naive => Box::new(NaiveEngine::new()),
            EngineKind::Counting => Box::new(CountingEngine::new()),
            EngineKind::Cluster => Box::new(ClusterEngine::new()),
            EngineKind::Trie => Box::new(TrieEngine::new()),
        }
    }
}

impl std::str::FromStr for EngineKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "naive" => Ok(EngineKind::Naive),
            "counting" => Ok(EngineKind::Counting),
            "cluster" => Ok(EngineKind::Cluster),
            "trie" => Ok(EngineKind::Trie),
            other => Err(format!("unknown engine kind: {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_each_kind() {
        for kind in EngineKind::ALL {
            let engine = kind.build();
            assert_eq!(engine.name(), kind.name());
            assert!(engine.is_empty());
        }
    }

    #[test]
    fn kind_parses_from_name() {
        for kind in EngineKind::ALL {
            assert_eq!(kind.name().parse::<EngineKind>().unwrap(), kind);
        }
        assert!("bogus".parse::<EngineKind>().is_err());
    }
}
