//! The engine abstraction.
//!
//! S-ToPSS is explicitly designed as a *wrapper* around existing
//! content-based matching algorithms ("our goals are to minimize the
//! changes to the algorithms", §3.1). This trait is the seam: the semantic
//! layer transforms events and subscriptions, engines stay purely
//! syntactic.

use stopss_types::{Event, Interner, SubId, Subscription};

/// A content-based (syntactic) matching engine.
///
/// # Contract
///
/// * `match_event` must append exactly the ids of the live subscriptions
///   `s` with `s.matches(event, interner)` — no duplicates, any order.
/// * `insert` with an id that is already live replaces the old
///   subscription.
/// * Engines may keep interior scratch state (`match_event` takes
///   `&mut self`); they must not retain references to the event.
pub trait MatchingEngine: Send {
    /// A short stable name for reports ("naive", "counting", ...).
    fn name(&self) -> &'static str;

    /// Adds (or replaces) a subscription.
    fn insert(&mut self, sub: Subscription);

    /// Removes a subscription; returns whether it was present.
    fn remove(&mut self, id: SubId) -> bool;

    /// Appends every matching subscription id to `out`.
    fn match_event(&mut self, event: &Event, interner: &Interner, out: &mut Vec<SubId>);

    /// Number of live subscriptions.
    fn len(&self) -> usize;

    /// True if no subscriptions are registered.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes all subscriptions.
    fn clear(&mut self);

    /// Clones the engine (index, live subscriptions, scratch) into a new
    /// boxed instance. The copy-on-write step of the snapshot control
    /// plane: control ops fork the engine aside and publish the fork.
    fn boxed_clone(&self) -> Box<dyn MatchingEngine>;
}

/// Convenience wrapper: collect matches into a fresh, sorted `Vec`.
pub fn collect_matches(
    engine: &mut dyn MatchingEngine,
    event: &Event,
    interner: &Interner,
) -> Vec<SubId> {
    let mut out = Vec::new();
    engine.match_event(event, interner, &mut out);
    out.sort_unstable();
    debug_assert!(out.windows(2).all(|w| w[0] != w[1]), "engine emitted duplicate ids");
    out
}
