//! The counting algorithm (Aguilera et al. PODC'99, Fabret et al.
//! SIGMOD'01) — reference \[1\] and \[4\] of the S-ToPSS paper.
//!
//! Identical predicates across subscriptions are stored once in a global
//! predicate table. Per attribute, an `AttrIndex` finds the predicates an
//! event value satisfies; each satisfied predicate bumps a counter on every
//! subscription that contains it, and a subscription matches when its
//! counter reaches its predicate count. Counters are *epoch-stamped*
//! (Fabret et al.): resetting between events is O(1) — stale counters are
//! recognized by their epoch instead of being cleared.

use stopss_types::{Event, FxHashMap, Interner, Predicate, SubId, Subscription, Symbol};

use crate::engine::MatchingEngine;
use crate::index::{AttrIndex, PredIdx};

type SlotIdx = u32;

#[derive(Clone, Debug)]
struct PredEntry {
    pred: Predicate,
    /// How many live subscriptions reference this predicate.
    refcount: u32,
    /// Epoch of the last event that satisfied it (dedups multi-valued probes).
    epoch: u64,
    /// Slots of the subscriptions containing this predicate.
    subscribers: Vec<SlotIdx>,
}

#[derive(Clone, Debug)]
struct SubSlot {
    id: SubId,
    /// Distinct predicates required (0 = universal subscription).
    required: u32,
    /// Satisfied-predicate count, valid only when `epoch` is current.
    count: u32,
    epoch: u64,
    pred_idxs: Box<[PredIdx]>,
}

/// Counting-algorithm matching engine.
#[derive(Clone, Default, Debug)]
pub struct CountingEngine {
    preds: Vec<PredEntry>,
    free_preds: Vec<PredIdx>,
    pred_ids: FxHashMap<Predicate, PredIdx>,
    attrs: FxHashMap<Symbol, AttrIndex>,
    slots: Vec<SubSlot>,
    free_slots: Vec<SlotIdx>,
    by_id: FxHashMap<SubId, SlotIdx>,
    /// Slots with zero predicates; they match every event.
    universal: Vec<SlotIdx>,
    epoch: u64,
    live: usize,
}

impl CountingEngine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct predicates currently indexed (diagnostic;
    /// predicate sharing across subscriptions is the point of the
    /// algorithm).
    pub fn distinct_predicates(&self) -> usize {
        self.pred_ids.len()
    }

    fn intern_predicate(&mut self, pred: Predicate) -> PredIdx {
        if let Some(&idx) = self.pred_ids.get(&pred) {
            self.preds[idx as usize].refcount += 1;
            return idx;
        }
        let idx = match self.free_preds.pop() {
            Some(idx) => {
                self.preds[idx as usize] =
                    PredEntry { pred, refcount: 1, epoch: 0, subscribers: Vec::new() };
                idx
            }
            None => {
                let idx = self.preds.len() as PredIdx;
                self.preds.push(PredEntry { pred, refcount: 1, epoch: 0, subscribers: Vec::new() });
                idx
            }
        };
        self.pred_ids.insert(pred, idx);
        self.attrs.entry(pred.attr).or_default().insert(pred, idx);
        idx
    }

    fn release_predicate(&mut self, idx: PredIdx) {
        let entry = &mut self.preds[idx as usize];
        entry.refcount -= 1;
        if entry.refcount > 0 {
            return;
        }
        let pred = entry.pred;
        entry.subscribers.clear();
        self.pred_ids.remove(&pred);
        if let Some(ix) = self.attrs.get_mut(&pred.attr) {
            ix.remove(&pred, idx);
            if ix.is_empty() {
                self.attrs.remove(&pred.attr);
            }
        }
        self.free_preds.push(idx);
    }

    fn alloc_slot(&mut self, slot: SubSlot) -> SlotIdx {
        match self.free_slots.pop() {
            Some(idx) => {
                self.slots[idx as usize] = slot;
                idx
            }
            None => {
                let idx = self.slots.len() as SlotIdx;
                self.slots.push(slot);
                idx
            }
        }
    }
}

impl MatchingEngine for CountingEngine {
    fn name(&self) -> &'static str {
        "counting"
    }

    fn insert(&mut self, sub: Subscription) {
        self.remove(sub.id());
        // The counting algorithm counts *distinct* predicates: a
        // subscription that repeats a predicate must not demand two
        // increments that a single shared counter can never deliver.
        let mut distinct: Vec<Predicate> = Vec::with_capacity(sub.len());
        for p in sub.predicates() {
            if !distinct.contains(p) {
                distinct.push(*p);
            }
        }
        let pred_idxs: Box<[PredIdx]> =
            distinct.iter().map(|p| self.intern_predicate(*p)).collect();
        let required = pred_idxs.len() as u32;
        let slot_idx =
            self.alloc_slot(SubSlot { id: sub.id(), required, count: 0, epoch: 0, pred_idxs });
        // Borrow dance: register the slot with each predicate entry.
        let pred_idxs = self.slots[slot_idx as usize].pred_idxs.clone();
        for idx in pred_idxs.iter() {
            self.preds[*idx as usize].subscribers.push(slot_idx);
        }
        if required == 0 {
            self.universal.push(slot_idx);
        }
        self.by_id.insert(sub.id(), slot_idx);
        self.live += 1;
    }

    fn remove(&mut self, id: SubId) -> bool {
        let Some(slot_idx) = self.by_id.remove(&id) else {
            return false;
        };
        let pred_idxs = std::mem::take(&mut self.slots[slot_idx as usize].pred_idxs);
        for &pidx in pred_idxs.iter() {
            let subscribers = &mut self.preds[pidx as usize].subscribers;
            if let Some(pos) = subscribers.iter().position(|s| *s == slot_idx) {
                subscribers.swap_remove(pos);
            }
            self.release_predicate(pidx);
        }
        if self.slots[slot_idx as usize].required == 0 {
            if let Some(pos) = self.universal.iter().position(|s| *s == slot_idx) {
                self.universal.swap_remove(pos);
            }
        }
        self.free_slots.push(slot_idx);
        self.live -= 1;
        true
    }

    fn match_event(&mut self, event: &Event, interner: &Interner, out: &mut Vec<SubId>) {
        self.epoch += 1;
        let epoch = self.epoch;
        // Split borrows: the index is read-only while predicate entries and
        // subscription slots are updated.
        let attrs = &self.attrs;
        let preds = &mut self.preds;
        let slots = &mut self.slots;
        for &slot_idx in &self.universal {
            out.push(slots[slot_idx as usize].id);
        }
        for (attr, value) in event.pairs() {
            let Some(ix) = attrs.get(attr) else {
                continue;
            };
            ix.probe(value, interner, &mut |pidx: PredIdx| {
                let entry = &mut preds[pidx as usize];
                if entry.epoch == epoch {
                    return; // already satisfied by an earlier pair of this event
                }
                entry.epoch = epoch;
                for &slot_idx in &entry.subscribers {
                    let slot = &mut slots[slot_idx as usize];
                    if slot.epoch != epoch {
                        slot.epoch = epoch;
                        slot.count = 0;
                    }
                    slot.count += 1;
                    if slot.count == slot.required {
                        out.push(slot.id);
                    }
                }
            });
        }
    }

    fn len(&self) -> usize {
        self.live
    }

    fn clear(&mut self) {
        self.preds.clear();
        self.free_preds.clear();
        self.pred_ids.clear();
        self.attrs.clear();
        self.slots.clear();
        self.free_slots.clear();
        self.by_id.clear();
        self.universal.clear();
        self.live = 0;
    }

    fn boxed_clone(&self) -> Box<dyn MatchingEngine> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::collect_matches;
    use stopss_types::{EventBuilder, Operator, SubscriptionBuilder, Value};

    #[test]
    fn basic_conjunction_matching() {
        let mut i = Interner::new();
        let mut eng = CountingEngine::new();
        eng.insert(
            SubscriptionBuilder::new(&mut i)
                .term_eq("university", "toronto")
                .pred("experience", Operator::Ge, 4i64)
                .build(SubId(1)),
        );
        eng.insert(
            SubscriptionBuilder::new(&mut i).term_eq("university", "toronto").build(SubId(2)),
        );

        let hit = EventBuilder::new(&mut i)
            .term("university", "toronto")
            .pair("experience", 5i64)
            .build();
        let partial = EventBuilder::new(&mut i)
            .term("university", "toronto")
            .pair("experience", 2i64)
            .build();
        assert_eq!(collect_matches(&mut eng, &hit, &i), vec![SubId(1), SubId(2)]);
        assert_eq!(collect_matches(&mut eng, &partial, &i), vec![SubId(2)]);
    }

    #[test]
    fn predicates_are_shared_across_subscriptions() {
        let mut i = Interner::new();
        let mut eng = CountingEngine::new();
        for k in 0..10 {
            eng.insert(SubscriptionBuilder::new(&mut i).term_eq("city", "berlin").build(SubId(k)));
        }
        assert_eq!(eng.distinct_predicates(), 1);
        assert_eq!(eng.len(), 10);
    }

    #[test]
    fn duplicate_predicates_in_one_subscription_still_match() {
        let mut i = Interner::new();
        let mut eng = CountingEngine::new();
        eng.insert(
            SubscriptionBuilder::new(&mut i).term_eq("a", "x").term_eq("a", "x").build(SubId(1)),
        );
        let e = EventBuilder::new(&mut i).term("a", "x").build();
        assert_eq!(collect_matches(&mut eng, &e, &i), vec![SubId(1)]);
    }

    #[test]
    fn multi_valued_event_satisfies_predicate_once() {
        let mut i = Interner::new();
        let mut eng = CountingEngine::new();
        // Two predicates on the same attribute, satisfied by different pairs.
        eng.insert(
            SubscriptionBuilder::new(&mut i)
                .pred("x", Operator::Gt, 5i64)
                .pred("x", Operator::Lt, 3i64)
                .build(SubId(1)),
        );
        let x = i.get("x").unwrap();
        let e = stopss_types::Event::new().with(x, Value::Int(10)).with(x, Value::Int(1));
        assert_eq!(collect_matches(&mut eng, &e, &i), vec![SubId(1)]);
        // A pair satisfying the same predicate twice must not double-count.
        let e2 = stopss_types::Event::new().with(x, Value::Int(10)).with(x, Value::Int(11));
        assert!(collect_matches(&mut eng, &e2, &i).is_empty());
    }

    #[test]
    fn universal_subscription_matches_every_event() {
        let mut i = Interner::new();
        let mut eng = CountingEngine::new();
        eng.insert(Subscription::new(SubId(9), vec![]));
        let e = EventBuilder::new(&mut i).pair("anything", 1i64).build();
        assert_eq!(collect_matches(&mut eng, &e, &i), vec![SubId(9)]);
        assert_eq!(collect_matches(&mut eng, &stopss_types::Event::new(), &i), vec![SubId(9)]);
        assert!(eng.remove(SubId(9)));
        assert!(collect_matches(&mut eng, &e, &i).is_empty());
    }

    #[test]
    fn remove_releases_shared_predicates() {
        let mut i = Interner::new();
        let mut eng = CountingEngine::new();
        eng.insert(SubscriptionBuilder::new(&mut i).term_eq("city", "berlin").build(SubId(1)));
        eng.insert(SubscriptionBuilder::new(&mut i).term_eq("city", "berlin").build(SubId(2)));
        assert_eq!(eng.distinct_predicates(), 1);
        assert!(eng.remove(SubId(1)));
        assert_eq!(eng.distinct_predicates(), 1, "still referenced by sub#2");
        assert!(eng.remove(SubId(2)));
        assert_eq!(eng.distinct_predicates(), 0);
        let e = EventBuilder::new(&mut i).term("city", "berlin").build();
        assert!(collect_matches(&mut eng, &e, &i).is_empty());
    }

    #[test]
    fn slots_and_predicates_are_recycled() {
        let mut i = Interner::new();
        let mut eng = CountingEngine::new();
        for round in 0..5 {
            for k in 0..20u64 {
                eng.insert(
                    SubscriptionBuilder::new(&mut i).term_eq("k", &format!("v{k}")).build(SubId(k)),
                );
            }
            assert_eq!(eng.len(), 20, "round {round}");
            for k in 0..20u64 {
                assert!(eng.remove(SubId(k)));
            }
            assert_eq!(eng.len(), 0);
        }
        assert!(eng.slots.len() <= 20, "slots must be reused, got {}", eng.slots.len());
        assert!(eng.preds.len() <= 20, "pred entries must be reused");
    }

    #[test]
    fn reinsert_same_id_replaces() {
        let mut i = Interner::new();
        let mut eng = CountingEngine::new();
        eng.insert(SubscriptionBuilder::new(&mut i).term_eq("a", "x").build(SubId(1)));
        eng.insert(SubscriptionBuilder::new(&mut i).term_eq("a", "y").build(SubId(1)));
        assert_eq!(eng.len(), 1);
        let ex = EventBuilder::new(&mut i).term("a", "x").build();
        let ey = EventBuilder::new(&mut i).term("a", "y").build();
        assert!(collect_matches(&mut eng, &ex, &i).is_empty());
        assert_eq!(collect_matches(&mut eng, &ey, &i), vec![SubId(1)]);
    }

    #[test]
    fn clear_resets_everything() {
        let mut i = Interner::new();
        let mut eng = CountingEngine::new();
        eng.insert(SubscriptionBuilder::new(&mut i).term_eq("a", "x").build(SubId(1)));
        eng.insert(Subscription::new(SubId(2), vec![]));
        eng.clear();
        assert!(eng.is_empty());
        let e = EventBuilder::new(&mut i).term("a", "x").build();
        assert!(collect_matches(&mut eng, &e, &i).is_empty());
    }

    #[test]
    fn range_and_string_predicates_integrate() {
        let mut i = Interner::new();
        let mut eng = CountingEngine::new();
        eng.insert(
            SubscriptionBuilder::new(&mut i)
                .pred("salary", Operator::Ge, 50_000i64)
                .term("title", Operator::Contains, "developer")
                .build(SubId(1)),
        );
        let hit = EventBuilder::new(&mut i)
            .pair("salary", 60_000i64)
            .term("title", "mainframe developer")
            .build();
        let miss = EventBuilder::new(&mut i)
            .pair("salary", 40_000i64)
            .term("title", "mainframe developer")
            .build();
        assert_eq!(collect_matches(&mut eng, &hit, &i), vec![SubId(1)]);
        assert!(collect_matches(&mut eng, &miss, &i).is_empty());
    }
}
