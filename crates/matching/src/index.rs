//! Per-attribute predicate index used by the counting engine.
//!
//! For one attribute, the index answers: *given this event value, which
//! registered predicates are satisfied?* Equality predicates are found by
//! one hash probe; range predicates by binary search over sorted
//! thresholds; `Exists` is a broadcast; `Ne` and the string operators are
//! short per-attribute lists evaluated directly (they are rare in
//! practice, and a list keeps removal trivial).

use std::cmp::Ordering;

use stopss_types::{FxHashMap, Interner, Operator, Predicate, Value};

/// Dense index of a predicate in the engine's predicate table.
pub(crate) type PredIdx = u32;

/// Index over all predicates that test a single attribute.
#[derive(Clone, Default, Debug)]
pub(crate) struct AttrIndex {
    /// `attr = c`: value → predicate indexes.
    eq: FxHashMap<Value, Vec<PredIdx>>,
    /// `attr != c`, evaluated per probe.
    ne: Vec<(Predicate, PredIdx)>,
    /// `attr exists`: satisfied by any probe.
    exists: Vec<PredIdx>,
    /// `attr < c` / `attr <= c`, sorted ascending by threshold.
    upper: Vec<RangeEntry>,
    /// `attr > c` / `attr >= c`, sorted ascending by threshold.
    lower: Vec<RangeEntry>,
    /// Prefix / Suffix / Contains, evaluated per probe.
    strings: Vec<(Predicate, PredIdx)>,
    /// Registered but never satisfiable (e.g. `< "toronto"`, `< NaN`).
    /// Kept only so occupancy accounting stays exact.
    inert: Vec<PredIdx>,
}

#[derive(Clone, Debug)]
struct RangeEntry {
    threshold: Value,
    op: Operator,
    idx: PredIdx,
}

/// Total numeric order for *indexable* thresholds (numeric, non-NaN).
fn threshold_cmp(a: &Value, b: &Value) -> Ordering {
    a.range_cmp(b).expect("only comparable numeric thresholds are indexed")
}

impl AttrIndex {
    /// Registers a predicate under `idx`.
    pub(crate) fn insert(&mut self, pred: Predicate, idx: PredIdx) {
        match pred.op {
            Operator::Eq => self.eq.entry(pred.value).or_default().push(idx),
            Operator::Ne => self.ne.push((pred, idx)),
            Operator::Exists => self.exists.push(idx),
            Operator::Lt | Operator::Le | Operator::Gt | Operator::Ge => {
                // Range predicates over non-numeric or NaN thresholds can
                // never be satisfied (Value::range_cmp returns None).
                let indexable = pred.value.is_numeric()
                    && pred.value.range_cmp(&pred.value) == Some(Ordering::Equal);
                if !indexable {
                    self.inert.push(idx);
                    return;
                }
                let entry = RangeEntry { threshold: pred.value, op: pred.op, idx };
                let side = if pred.op == Operator::Lt || pred.op == Operator::Le {
                    &mut self.upper
                } else {
                    &mut self.lower
                };
                let pos = side.partition_point(|e| {
                    threshold_cmp(&e.threshold, &entry.threshold) == Ordering::Less
                });
                side.insert(pos, entry);
            }
            Operator::Prefix | Operator::Suffix | Operator::Contains => {
                self.strings.push((pred, idx));
            }
        }
    }

    /// Unregisters a predicate previously inserted under `idx`.
    pub(crate) fn remove(&mut self, pred: &Predicate, idx: PredIdx) {
        fn drop_idx(list: &mut Vec<(Predicate, PredIdx)>, idx: PredIdx) {
            if let Some(pos) = list.iter().position(|(_, i)| *i == idx) {
                list.swap_remove(pos);
            }
        }
        match pred.op {
            Operator::Eq => {
                if let Some(bucket) = self.eq.get_mut(&pred.value) {
                    if let Some(pos) = bucket.iter().position(|i| *i == idx) {
                        bucket.swap_remove(pos);
                    }
                    if bucket.is_empty() {
                        self.eq.remove(&pred.value);
                    }
                }
            }
            Operator::Ne => drop_idx(&mut self.ne, idx),
            Operator::Exists => {
                if let Some(pos) = self.exists.iter().position(|i| *i == idx) {
                    self.exists.swap_remove(pos);
                }
            }
            Operator::Lt | Operator::Le | Operator::Gt | Operator::Ge => {
                for side in [&mut self.upper, &mut self.lower] {
                    if let Some(pos) = side.iter().position(|e| e.idx == idx) {
                        side.remove(pos); // keep order
                        return;
                    }
                }
                if let Some(pos) = self.inert.iter().position(|i| *i == idx) {
                    self.inert.swap_remove(pos);
                }
            }
            Operator::Prefix | Operator::Suffix | Operator::Contains => {
                drop_idx(&mut self.strings, idx);
            }
        }
    }

    /// True if no predicates are registered.
    pub(crate) fn is_empty(&self) -> bool {
        self.eq.is_empty()
            && self.ne.is_empty()
            && self.exists.is_empty()
            && self.upper.is_empty()
            && self.lower.is_empty()
            && self.strings.is_empty()
            && self.inert.is_empty()
    }

    /// Calls `emit` for every registered predicate satisfied by `value`.
    /// A predicate may be emitted at most once per probe; across multiple
    /// probes for the same event the caller deduplicates (epoch stamps).
    pub(crate) fn probe(&self, value: &Value, interner: &Interner, emit: &mut dyn FnMut(PredIdx)) {
        // Exists: every probe satisfies.
        for &idx in &self.exists {
            emit(idx);
        }
        // Eq: single hash probe.
        if let Some(bucket) = self.eq.get(value) {
            for &idx in bucket {
                emit(idx);
            }
        }
        // Ne and strings: direct evaluation.
        for (pred, idx) in &self.ne {
            if pred.eval(value, interner) {
                emit(*idx);
            }
        }
        for (pred, idx) in &self.strings {
            if pred.eval(value, interner) {
                emit(*idx);
            }
        }
        // Ranges: only numeric event values can satisfy them.
        if !value.is_numeric() || value.range_cmp(value) != Some(Ordering::Equal) {
            return;
        }
        // upper = {v < c | v <= c}, ascending by c. Everything with c > v is
        // satisfied by both operators; c == v only by Le.
        let start =
            self.upper.partition_point(|e| e.threshold.range_cmp(value) == Some(Ordering::Less));
        for e in &self.upper[start..] {
            match e.threshold.range_cmp(value) {
                Some(Ordering::Greater) => emit(e.idx),
                Some(Ordering::Equal) if e.op == Operator::Le => emit(e.idx),
                _ => {}
            }
        }
        // lower = {v > c | v >= c}, ascending by c. Everything with c < v is
        // satisfied by both operators; c == v only by Ge.
        let end =
            self.lower.partition_point(|e| e.threshold.range_cmp(value) == Some(Ordering::Less));
        for e in &self.lower[..end] {
            emit(e.idx);
        }
        for e in &self.lower[end..] {
            match e.threshold.range_cmp(value) {
                Some(Ordering::Equal) if e.op == Operator::Ge => emit(e.idx),
                Some(Ordering::Equal) => {}
                _ => break, // sorted: once c > v nothing further matches
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stopss_types::Symbol;

    fn probe_all(ix: &AttrIndex, v: &Value, interner: &Interner) -> Vec<PredIdx> {
        let mut out = Vec::new();
        ix.probe(v, interner, &mut |i| out.push(i));
        out.sort_unstable();
        out
    }

    fn attr() -> Symbol {
        Symbol::from_index(0)
    }

    #[test]
    fn eq_probe_hits_exactly_matching_values() {
        let i = Interner::new();
        let mut ix = AttrIndex::default();
        ix.insert(Predicate::new(attr(), Operator::Eq, Value::Int(3)), 0);
        ix.insert(Predicate::new(attr(), Operator::Eq, Value::Int(4)), 1);
        assert_eq!(probe_all(&ix, &Value::Int(3), &i), vec![0]);
        assert_eq!(probe_all(&ix, &Value::Int(4), &i), vec![1]);
        assert!(probe_all(&ix, &Value::Int(5), &i).is_empty());
        assert!(probe_all(&ix, &Value::Float(3.0), &i).is_empty(), "Eq is strict");
    }

    #[test]
    fn range_probe_respects_boundaries() {
        let i = Interner::new();
        let mut ix = AttrIndex::default();
        ix.insert(Predicate::new(attr(), Operator::Lt, Value::Int(10)), 0);
        ix.insert(Predicate::new(attr(), Operator::Le, Value::Int(10)), 1);
        ix.insert(Predicate::new(attr(), Operator::Gt, Value::Int(10)), 2);
        ix.insert(Predicate::new(attr(), Operator::Ge, Value::Int(10)), 3);

        assert_eq!(probe_all(&ix, &Value::Int(9), &i), vec![0, 1]);
        assert_eq!(probe_all(&ix, &Value::Int(10), &i), vec![1, 3]);
        assert_eq!(probe_all(&ix, &Value::Int(11), &i), vec![2, 3]);
        assert_eq!(probe_all(&ix, &Value::Float(10.5), &i), vec![2, 3]);
    }

    #[test]
    fn range_probe_with_many_thresholds() {
        let i = Interner::new();
        let mut ix = AttrIndex::default();
        // ge 0, ge 1, ..., ge 9 inserted out of order.
        for k in [5i64, 1, 9, 0, 3, 7, 2, 8, 4, 6] {
            ix.insert(Predicate::new(attr(), Operator::Ge, Value::Int(k)), k as PredIdx);
        }
        let got = probe_all(&ix, &Value::Int(4), &i);
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn non_numeric_event_values_skip_ranges() {
        let mut interner = Interner::new();
        let s = interner.intern("x");
        let mut ix = AttrIndex::default();
        ix.insert(Predicate::new(attr(), Operator::Ge, Value::Int(0)), 0);
        assert!(probe_all(&ix, &Value::Sym(s), &interner).is_empty());
        assert!(probe_all(&ix, &Value::Bool(true), &interner).is_empty());
        assert!(probe_all(&ix, &Value::Float(f64::NAN), &interner).is_empty());
    }

    #[test]
    fn unsatisfiable_range_thresholds_are_inert() {
        let mut interner = Interner::new();
        let s = interner.intern("toronto");
        let mut ix = AttrIndex::default();
        let bad_sym = Predicate::new(attr(), Operator::Lt, Value::Sym(s));
        let bad_nan = Predicate::new(attr(), Operator::Gt, Value::Float(f64::NAN));
        ix.insert(bad_sym, 0);
        ix.insert(bad_nan, 1);
        assert!(probe_all(&ix, &Value::Int(5), &interner).is_empty());
        assert!(!ix.is_empty());
        ix.remove(&bad_sym, 0);
        ix.remove(&bad_nan, 1);
        assert!(ix.is_empty());
    }

    #[test]
    fn ne_exists_and_strings_probe_correctly() {
        let mut interner = Interner::new();
        let dev = interner.intern("mainframe developer");
        let other = interner.intern("web developer");
        let suffix = interner.intern("developer");
        let mut ix = AttrIndex::default();
        ix.insert(Predicate::new(attr(), Operator::Ne, Value::Sym(other)), 0);
        ix.insert(Predicate::exists(attr()), 1);
        ix.insert(Predicate::new(attr(), Operator::Suffix, Value::Sym(suffix)), 2);

        assert_eq!(probe_all(&ix, &Value::Sym(dev), &interner), vec![0, 1, 2]);
        assert_eq!(probe_all(&ix, &Value::Sym(other), &interner), vec![1, 2]);
        assert_eq!(probe_all(&ix, &Value::Int(3), &interner), vec![0, 1]);
    }

    #[test]
    fn remove_unindexes_each_operator_class() {
        let mut interner = Interner::new();
        let s = interner.intern("s");
        let preds = [
            Predicate::new(attr(), Operator::Eq, Value::Int(1)),
            Predicate::new(attr(), Operator::Ne, Value::Int(1)),
            Predicate::exists(attr()),
            Predicate::new(attr(), Operator::Lt, Value::Int(5)),
            Predicate::new(attr(), Operator::Ge, Value::Int(5)),
            Predicate::new(attr(), Operator::Contains, Value::Sym(s)),
        ];
        let mut ix = AttrIndex::default();
        for (k, p) in preds.iter().enumerate() {
            ix.insert(*p, k as PredIdx);
        }
        assert!(!ix.is_empty());
        for (k, p) in preds.iter().enumerate() {
            ix.remove(p, k as PredIdx);
        }
        assert!(ix.is_empty());
        assert!(probe_all(&ix, &Value::Int(1), &interner).is_empty());
    }

    #[test]
    fn mixed_int_float_thresholds_interleave() {
        let i = Interner::new();
        let mut ix = AttrIndex::default();
        ix.insert(Predicate::new(attr(), Operator::Gt, Value::Float(1.5)), 0);
        ix.insert(Predicate::new(attr(), Operator::Gt, Value::Int(2)), 1);
        ix.insert(Predicate::new(attr(), Operator::Gt, Value::Float(2.5)), 2);
        assert_eq!(probe_all(&ix, &Value::Int(2), &i), vec![0]);
        assert_eq!(probe_all(&ix, &Value::Float(2.2), &i), vec![0, 1]);
        assert_eq!(probe_all(&ix, &Value::Int(3), &i), vec![0, 1, 2]);
    }
}
