//! Subscription-trie engine (the "matching tree" of Aguilera et al.).
//!
//! Subscriptions are canonicalized (predicates sorted), then inserted as
//! paths into a trie so that subscriptions sharing predicate *prefixes*
//! share evaluation work. Matching is a depth-first walk: at each node the
//! engine descends along every edge whose predicate the event satisfies,
//! collecting subscription ids stored at the nodes it reaches.
//!
//! Edges are grouped per attribute, so whole edge groups are skipped when
//! the event does not carry the attribute; within a group, equality edges
//! are found with one hash probe and the remaining edges are evaluated
//! directly.

use std::cmp::Ordering;

use stopss_types::{
    Event, FxHashMap, Interner, Operator, Predicate, SubId, Subscription, Symbol, Value,
};

use crate::engine::MatchingEngine;

type NodeId = u32;

/// Canonical predicate order: attribute, then operator, then value (total
/// index order). Determines which subscriptions share trie prefixes.
fn canonical_cmp(a: &Predicate, b: &Predicate) -> Ordering {
    a.attr.cmp(&b.attr).then_with(|| a.op.cmp(&b.op)).then_with(|| a.value.index_cmp(&b.value))
}

#[derive(Clone, Default, Debug)]
struct EdgeGroup {
    /// Equality edges: value → child.
    eq: FxHashMap<Value, NodeId>,
    /// All other operators: evaluated one by one.
    other: Vec<(Predicate, NodeId)>,
}

impl EdgeGroup {
    fn is_empty(&self) -> bool {
        self.eq.is_empty() && self.other.is_empty()
    }
}

#[derive(Clone, Default, Debug)]
struct Node {
    /// Outgoing edges grouped by the attribute their predicate tests.
    groups: FxHashMap<Symbol, EdgeGroup>,
    /// Subscriptions whose full predicate path ends here.
    subs: Vec<SubId>,
    /// Number of subscriptions in this subtree (enables pruning).
    weight: u32,
}

/// Trie-based matching engine.
#[derive(Clone, Debug)]
pub struct TrieEngine {
    nodes: Vec<Node>,
    free: Vec<NodeId>,
    by_id: FxHashMap<SubId, Vec<Predicate>>,
}

impl Default for TrieEngine {
    fn default() -> Self {
        TrieEngine { nodes: vec![Node::default()], free: Vec::new(), by_id: FxHashMap::default() }
    }
}

impl TrieEngine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live trie nodes (diagnostic; prefix sharing shows up as
    /// node count « total predicate count).
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    fn canonicalize(sub: &Subscription) -> Vec<Predicate> {
        let mut preds: Vec<Predicate> = sub.predicates().to_vec();
        preds.sort_unstable_by(canonical_cmp);
        preds.dedup();
        preds
    }

    fn alloc_node(&mut self) -> NodeId {
        match self.free.pop() {
            Some(id) => {
                self.nodes[id as usize] = Node::default();
                id
            }
            None => {
                let id = self.nodes.len() as NodeId;
                self.nodes.push(Node::default());
                id
            }
        }
    }

    fn child_for(&mut self, node: NodeId, pred: &Predicate) -> Option<NodeId> {
        let group = self.nodes[node as usize].groups.get(&pred.attr)?;
        if pred.op == Operator::Eq {
            group.eq.get(&pred.value).copied()
        } else {
            group.other.iter().find(|(p, _)| p == pred).map(|(_, c)| *c)
        }
    }

    fn insert_child(&mut self, node: NodeId, pred: Predicate, child: NodeId) {
        let group = self.nodes[node as usize].groups.entry(pred.attr).or_default();
        if pred.op == Operator::Eq {
            group.eq.insert(pred.value, child);
        } else {
            group.other.push((pred, child));
        }
    }

    /// Removes the edge `node --pred--> child`, pruning empty groups.
    fn remove_child(&mut self, node: NodeId, pred: &Predicate) {
        let node_ref = &mut self.nodes[node as usize];
        if let Some(group) = node_ref.groups.get_mut(&pred.attr) {
            if pred.op == Operator::Eq {
                group.eq.remove(&pred.value);
            } else if let Some(pos) = group.other.iter().position(|(p, _)| p == pred) {
                group.other.swap_remove(pos);
            }
            if group.is_empty() {
                node_ref.groups.remove(&pred.attr);
            }
        }
    }

    fn walk(&self, node: NodeId, event: &Event, interner: &Interner, out: &mut Vec<SubId>) {
        let n = &self.nodes[node as usize];
        out.extend_from_slice(&n.subs);
        for (attr, group) in &n.groups {
            // ∃-semantics over multi-valued events: try every pair. A
            // duplicated (attr, value) pair must descend only once, or the
            // subtree's matches would be emitted twice; skipping pairs that
            // already occurred earlier in the event avoids an allocation
            // (events are short, the quadratic scan is cheaper than a set).
            let pairs = event.pairs();
            for (k, (pair_attr, value)) in pairs.iter().enumerate() {
                if pair_attr != attr {
                    continue;
                }
                if pairs[..k].iter().any(|(a, v)| a == pair_attr && v == value) {
                    continue;
                }
                if let Some(&child) = group.eq.get(value) {
                    self.walk(child, event, interner, out);
                }
            }
            for (pred, child) in &group.other {
                if event.satisfies(pred, interner) {
                    self.walk(*child, event, interner, out);
                }
            }
        }
    }
}

impl MatchingEngine for TrieEngine {
    fn name(&self) -> &'static str {
        "trie"
    }

    fn insert(&mut self, sub: Subscription) {
        self.remove(sub.id());
        let preds = Self::canonicalize(&sub);
        let mut node: NodeId = 0;
        self.nodes[0].weight += 1;
        for pred in &preds {
            let child = match self.child_for(node, pred) {
                Some(c) => c,
                None => {
                    let c = self.alloc_node();
                    self.insert_child(node, *pred, c);
                    c
                }
            };
            node = child;
            self.nodes[node as usize].weight += 1;
        }
        self.nodes[node as usize].subs.push(sub.id());
        self.by_id.insert(sub.id(), preds);
    }

    fn remove(&mut self, id: SubId) -> bool {
        let Some(preds) = self.by_id.remove(&id) else {
            return false;
        };
        // Walk the path, recording it so empty suffix nodes can be pruned.
        let mut path: Vec<(NodeId, Predicate)> = Vec::with_capacity(preds.len());
        let mut node: NodeId = 0;
        self.nodes[0].weight -= 1;
        for pred in &preds {
            let child =
                self.child_for(node, pred).expect("by_id and trie structure must stay consistent");
            path.push((node, *pred));
            node = child;
            self.nodes[node as usize].weight -= 1;
        }
        let leaf = &mut self.nodes[node as usize];
        if let Some(pos) = leaf.subs.iter().position(|s| *s == id) {
            leaf.subs.swap_remove(pos);
        }
        // Prune now-empty nodes bottom-up.
        let mut current = node;
        for (parent, pred) in path.into_iter().rev() {
            if current != 0 && self.nodes[current as usize].weight == 0 {
                self.remove_child(parent, &pred);
                self.free.push(current);
                current = parent;
            } else {
                break;
            }
        }
        true
    }

    fn match_event(&mut self, event: &Event, interner: &Interner, out: &mut Vec<SubId>) {
        self.walk(0, event, interner, out);
    }

    fn len(&self) -> usize {
        self.by_id.len()
    }

    fn clear(&mut self) {
        self.nodes.clear();
        self.nodes.push(Node::default());
        self.free.clear();
        self.by_id.clear();
    }

    fn boxed_clone(&self) -> Box<dyn MatchingEngine> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::collect_matches;
    use stopss_types::{EventBuilder, SubscriptionBuilder};

    #[test]
    fn basic_matching_through_shared_prefixes() {
        let mut i = Interner::new();
        let mut eng = TrieEngine::new();
        eng.insert(
            SubscriptionBuilder::new(&mut i)
                .term_eq("city", "berlin")
                .pred("temp", Operator::Gt, 20i64)
                .build(SubId(1)),
        );
        eng.insert(
            SubscriptionBuilder::new(&mut i)
                .term_eq("city", "berlin")
                .pred("temp", Operator::Lt, 5i64)
                .build(SubId(2)),
        );
        eng.insert(SubscriptionBuilder::new(&mut i).term_eq("city", "berlin").build(SubId(3)));

        let warm = EventBuilder::new(&mut i).term("city", "berlin").pair("temp", 25i64).build();
        let cold = EventBuilder::new(&mut i).term("city", "berlin").pair("temp", 2i64).build();
        let mild = EventBuilder::new(&mut i).term("city", "berlin").pair("temp", 10i64).build();
        assert_eq!(collect_matches(&mut eng, &warm, &i), vec![SubId(1), SubId(3)]);
        assert_eq!(collect_matches(&mut eng, &cold, &i), vec![SubId(2), SubId(3)]);
        assert_eq!(collect_matches(&mut eng, &mild, &i), vec![SubId(3)]);
    }

    #[test]
    fn prefix_sharing_reduces_node_count() {
        let mut i = Interner::new();
        let mut eng = TrieEngine::new();
        // 50 subscriptions share (city=berlin, kind=job); each adds one
        // distinct third predicate.
        for k in 0..50u64 {
            eng.insert(
                SubscriptionBuilder::new(&mut i)
                    .term_eq("city", "berlin")
                    .term_eq("kind", "job")
                    .term_eq("skill", &format!("s{k}"))
                    .build(SubId(k)),
            );
        }
        // Root + city node + kind node + 50 leaves.
        assert_eq!(eng.node_count(), 53);
    }

    #[test]
    fn canonicalization_makes_predicate_order_irrelevant() {
        let mut i = Interner::new();
        let mut eng = TrieEngine::new();
        eng.insert(
            SubscriptionBuilder::new(&mut i).term_eq("b", "2").term_eq("a", "1").build(SubId(1)),
        );
        eng.insert(
            SubscriptionBuilder::new(&mut i).term_eq("a", "1").term_eq("b", "2").build(SubId(2)),
        );
        // Same canonical path → root + 2 nodes.
        assert_eq!(eng.node_count(), 3);
        let e = EventBuilder::new(&mut i).term("a", "1").term("b", "2").build();
        assert_eq!(collect_matches(&mut eng, &e, &i), vec![SubId(1), SubId(2)]);
    }

    #[test]
    fn remove_prunes_empty_paths() {
        let mut i = Interner::new();
        let mut eng = TrieEngine::new();
        eng.insert(
            SubscriptionBuilder::new(&mut i).term_eq("a", "1").term_eq("b", "2").build(SubId(1)),
        );
        assert_eq!(eng.node_count(), 3);
        assert!(eng.remove(SubId(1)));
        assert_eq!(eng.node_count(), 1, "only the root remains");
        assert_eq!(eng.len(), 0);
    }

    #[test]
    fn remove_keeps_shared_prefix_for_survivors() {
        let mut i = Interner::new();
        let mut eng = TrieEngine::new();
        eng.insert(
            SubscriptionBuilder::new(&mut i).term_eq("a", "1").term_eq("b", "2").build(SubId(1)),
        );
        eng.insert(SubscriptionBuilder::new(&mut i).term_eq("a", "1").build(SubId(2)));
        assert!(eng.remove(SubId(1)));
        let e = EventBuilder::new(&mut i).term("a", "1").term("b", "2").build();
        assert_eq!(collect_matches(&mut eng, &e, &i), vec![SubId(2)]);
    }

    #[test]
    fn empty_subscription_sits_at_root() {
        let mut i = Interner::new();
        let mut eng = TrieEngine::new();
        eng.insert(Subscription::new(SubId(1), vec![]));
        let e = EventBuilder::new(&mut i).pair("x", 1i64).build();
        assert_eq!(collect_matches(&mut eng, &e, &i), vec![SubId(1)]);
        assert!(eng.remove(SubId(1)));
        assert!(collect_matches(&mut eng, &e, &i).is_empty());
    }

    #[test]
    fn multi_valued_events_do_not_duplicate_matches() {
        let mut i = Interner::new();
        let mut eng = TrieEngine::new();
        eng.insert(SubscriptionBuilder::new(&mut i).term_eq("a", "x").build(SubId(1)));
        let a = i.get("a").unwrap();
        let x = Value::Sym(i.get("x").unwrap());
        let y = Value::Sym(i.intern("y"));
        let e = Event::from_pairs(vec![(a, x), (a, x), (a, y)]);
        assert_eq!(collect_matches(&mut eng, &e, &i), vec![SubId(1)]);
    }

    #[test]
    fn duplicate_predicates_collapse() {
        let mut i = Interner::new();
        let mut eng = TrieEngine::new();
        eng.insert(
            SubscriptionBuilder::new(&mut i).term_eq("a", "x").term_eq("a", "x").build(SubId(1)),
        );
        assert_eq!(eng.node_count(), 2);
        let e = EventBuilder::new(&mut i).term("a", "x").build();
        assert_eq!(collect_matches(&mut eng, &e, &i), vec![SubId(1)]);
    }
}
