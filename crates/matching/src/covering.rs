//! Subscription covering.
//!
//! A subscription *G covers* a subscription *S* when every event matching
//! S necessarily matches G. Brokers use covering to prune forwarding
//! tables and to answer "is this new subscription redundant?" — a classic
//! content-based pub/sub optimization (Siena; also relevant to the
//! rewrite strategy in `stopss-core`, whose expansions are all covered by
//! the original subscription).
//!
//! The check here is *sound but not complete*: `covers` returning true is
//! a guarantee; returning false only means covering could not be shown by
//! per-predicate implication. (Completeness would require deciding
//! implication from predicate *conjunctions*, e.g. that `x > 2 ∧ x < 4 ∧
//! int-typed` implies `x = 3` — a cost no broker pays.)
//!
//! Soundness holds under the ∃-semantics of multi-valued events: if
//! predicate `p` pointwise-implies `q`, any pair satisfying `p` satisfies
//! `q`, so `q` is satisfied whenever `p` is, whichever pair did it.

use std::cmp::Ordering;

use stopss_types::{Interner, Operator, Predicate, Subscription, Value};

/// Does every value satisfying `p` also satisfy `q`?
///
/// Predicates on different attributes never imply each other. The
/// relation is reflexive and transitive.
pub fn implies(p: &Predicate, q: &Predicate, interner: &Interner) -> bool {
    if p.attr != q.attr {
        return false;
    }
    if p == q {
        return true;
    }
    match q.op {
        // Anything on the attribute implies its existence.
        Operator::Exists => true,
        _ => match p.op {
            // p pins the value: evaluate q on it.
            Operator::Eq => q.eval(&p.value, interner),
            // p only guarantees "present and ≠ c": nothing else follows
            // (Exists was handled above; q == p was handled by equality).
            Operator::Ne => q.op == Operator::Ne && q.value == p.value,
            Operator::Lt | Operator::Le => range_implies(p, q),
            Operator::Gt | Operator::Ge => range_implies(p, q),
            Operator::Prefix | Operator::Suffix | Operator::Contains => {
                string_implies(p, q, interner)
            }
            Operator::Exists => false, // mere existence implies nothing stronger
        },
    }
}

/// Upper bounds: `x < c` / `x ≤ c`; lower bounds: `x > c` / `x ≥ c`.
fn range_implies(p: &Predicate, q: &Predicate) -> bool {
    let Some(ord) = p.value.range_cmp(&q.value) else {
        return false; // incomparable thresholds (or non-numeric): no claim
    };
    let strict_p = matches!(p.op, Operator::Lt | Operator::Gt);
    match (p.op, q.op) {
        // x <(=) c implies x <(=) d …
        (Operator::Lt | Operator::Le, Operator::Lt) => {
            // need (-∞, c) ⊆ (-∞, d) resp. (-∞, c] ⊆ (-∞, d)
            if strict_p {
                ord.is_le()
            } else {
                ord == Ordering::Less
            }
        }
        (Operator::Lt | Operator::Le, Operator::Le) => ord.is_le(),
        // … and x ≠ d for any d at or beyond the bound.
        (Operator::Lt, Operator::Ne) => ord.is_le(),
        (Operator::Le, Operator::Ne) => ord == Ordering::Less,
        // Lower bounds mirror the upper bounds.
        (Operator::Gt | Operator::Ge, Operator::Gt) => {
            if strict_p {
                ord.is_ge()
            } else {
                ord == Ordering::Greater
            }
        }
        (Operator::Gt | Operator::Ge, Operator::Ge) => ord.is_ge(),
        (Operator::Gt, Operator::Ne) => ord.is_ge(),
        (Operator::Ge, Operator::Ne) => ord == Ordering::Greater,
        _ => false,
    }
}

fn string_implies(p: &Predicate, q: &Predicate, interner: &Interner) -> bool {
    let (Value::Sym(ps), Value::Sym(qs)) = (p.value, q.value) else {
        return false;
    };
    let (Some(pat_p), Some(pat_q)) = (interner.try_resolve(ps), interner.try_resolve(qs)) else {
        return false;
    };
    match (p.op, q.op) {
        // startswith(x, s) and s startswith t ⟹ startswith(x, t)
        (Operator::Prefix, Operator::Prefix) => pat_p.starts_with(pat_q),
        (Operator::Suffix, Operator::Suffix) => pat_p.ends_with(pat_q),
        // any of the three guarantees x contains its own pattern.
        (Operator::Prefix | Operator::Suffix | Operator::Contains, Operator::Contains) => {
            pat_p.contains(pat_q)
        }
        _ => false,
    }
}

/// Does `general` cover `specific` — is every event matching `specific`
/// guaranteed to match `general`?
///
/// Sound, not complete: each predicate of `general` must be implied by
/// some single predicate of `specific`.
pub fn covers(general: &Subscription, specific: &Subscription, interner: &Interner) -> bool {
    general
        .predicates()
        .iter()
        .all(|q| specific.predicates().iter().any(|p| implies(p, q, interner)))
}

/// Partitions a set of subscriptions into the minimal *cover heads* (kept)
/// and the subscriptions covered by one of them (prunable). Quadratic —
/// intended for broker admission, not per-event paths.
pub fn cover_heads<'a>(
    subs: &'a [Subscription],
    interner: &Interner,
) -> (Vec<&'a Subscription>, Vec<&'a Subscription>) {
    let mut heads: Vec<&Subscription> = Vec::new();
    let mut pruned: Vec<&Subscription> = Vec::new();
    'outer: for sub in subs {
        // Covered by an existing head (or a duplicate of one)?
        if heads.iter().any(|h| covers(h, sub, interner)) {
            pruned.push(sub);
            continue 'outer;
        }
        // This one may cover existing heads: demote them.
        let mut k = 0;
        while k < heads.len() {
            if covers(sub, heads[k], interner) {
                pruned.push(heads.swap_remove(k));
            } else {
                k += 1;
            }
        }
        heads.push(sub);
    }
    (heads, pruned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stopss_types::{SubId, SubscriptionBuilder};

    fn setup() -> Interner {
        Interner::new()
    }

    fn pred(i: &mut Interner, attr: &str, op: Operator, v: impl Into<Value>) -> Predicate {
        Predicate::new(i.intern(attr), op, v.into())
    }

    #[test]
    fn equality_implies_everything_it_satisfies() {
        let mut i = setup();
        let eq5 = pred(&mut i, "x", Operator::Eq, 5i64);
        assert!(implies(&eq5, &pred(&mut i, "x", Operator::Ge, 5i64), &i));
        assert!(implies(&eq5, &pred(&mut i, "x", Operator::Lt, 6i64), &i));
        assert!(implies(&eq5, &pred(&mut i, "x", Operator::Ne, 4i64), &i));
        assert!(implies(&eq5, &Predicate::exists(i.intern("x")), &i));
        assert!(!implies(&eq5, &pred(&mut i, "x", Operator::Gt, 5i64), &i));
        assert!(!implies(&eq5, &pred(&mut i, "y", Operator::Ge, 0i64), &i), "different attr");
    }

    #[test]
    fn range_implication_boundaries() {
        let mut i = setup();
        let lt5 = pred(&mut i, "x", Operator::Lt, 5i64);
        let le5 = pred(&mut i, "x", Operator::Le, 5i64);
        assert!(implies(&lt5, &pred(&mut i, "x", Operator::Lt, 5i64), &i));
        assert!(implies(&lt5, &pred(&mut i, "x", Operator::Lt, 6i64), &i));
        assert!(implies(&lt5, &pred(&mut i, "x", Operator::Le, 5i64), &i));
        assert!(implies(&lt5, &pred(&mut i, "x", Operator::Ne, 5i64), &i));
        assert!(implies(&lt5, &pred(&mut i, "x", Operator::Ne, 7i64), &i));
        assert!(!implies(&lt5, &pred(&mut i, "x", Operator::Ne, 4i64), &i));
        assert!(!implies(&lt5, &pred(&mut i, "x", Operator::Lt, 4i64), &i));

        assert!(implies(&le5, &pred(&mut i, "x", Operator::Le, 5i64), &i));
        assert!(!implies(&le5, &pred(&mut i, "x", Operator::Lt, 5i64), &i), "x=5 breaks it");
        assert!(implies(&le5, &pred(&mut i, "x", Operator::Lt, 6i64), &i));
        assert!(!implies(&le5, &pred(&mut i, "x", Operator::Ne, 5i64), &i));

        let gt5 = pred(&mut i, "x", Operator::Gt, 5i64);
        assert!(implies(&gt5, &pred(&mut i, "x", Operator::Ge, 5i64), &i));
        assert!(implies(&gt5, &pred(&mut i, "x", Operator::Gt, 4i64), &i));
        assert!(implies(&gt5, &pred(&mut i, "x", Operator::Ne, 3i64), &i));
        assert!(!implies(&gt5, &pred(&mut i, "x", Operator::Gt, 6i64), &i));

        // Mixed numeric types compare numerically.
        assert!(implies(&lt5, &pred(&mut i, "x", Operator::Lt, 5.5f64), &i));
        assert!(!implies(&lt5, &pred(&mut i, "x", Operator::Lt, 4.5f64), &i));
    }

    #[test]
    fn string_implication() {
        let mut i = setup();
        let mainframe = Value::Sym(i.intern("mainframe"));
        let mainframe_dev = Value::Sym(i.intern("mainframe dev"));
        let p_main = pred(&mut i, "t", Operator::Prefix, mainframe);
        let p_main_dev = pred(&mut i, "t", Operator::Prefix, mainframe_dev);
        assert!(implies(&p_main_dev, &p_main, &i), "longer prefix implies shorter");
        assert!(!implies(&p_main, &p_main_dev, &i));
        let frame = Value::Sym(i.intern("frame"));
        let c_frame = pred(&mut i, "t", Operator::Contains, frame);
        assert!(implies(&p_main, &c_frame, &i), "prefix implies contains of its substring");
        let dev = Value::Sym(i.intern("dev"));
        let s_dev = pred(&mut i, "t", Operator::Suffix, dev);
        assert!(!implies(&p_main_dev, &s_dev, &i), "prefix does not bound the suffix");
        assert!(!implies(&s_dev, &c_frame, &i));
        let c_dev = pred(&mut i, "t", Operator::Contains, dev);
        assert!(implies(&s_dev, &c_dev, &i));
    }

    #[test]
    fn ne_and_exists_are_weak() {
        let mut i = setup();
        let ne5 = pred(&mut i, "x", Operator::Ne, 5i64);
        let exists = Predicate::exists(i.intern("x"));
        assert!(implies(&ne5, &exists, &i));
        assert!(implies(&ne5, &ne5, &i));
        assert!(!implies(&ne5, &pred(&mut i, "x", Operator::Ne, 6i64), &i));
        assert!(!implies(&exists, &ne5, &i));
        assert!(implies(&exists, &exists, &i));
    }

    #[test]
    fn covering_subscriptions() {
        let mut i = setup();
        let general = SubscriptionBuilder::new(&mut i)
            .pred("salary", Operator::Ge, 50_000i64)
            .build(SubId(1));
        let specific = SubscriptionBuilder::new(&mut i)
            .pred("salary", Operator::Ge, 80_000i64)
            .term_eq("city", "berlin")
            .build(SubId(2));
        assert!(covers(&general, &specific, &i));
        assert!(!covers(&specific, &general, &i));
        // The empty subscription covers everything and is covered only by
        // empty subscriptions.
        let universal = Subscription::new(SubId(0), vec![]);
        assert!(covers(&universal, &specific, &i));
        assert!(!covers(&specific, &universal, &i));
        assert!(covers(&universal, &universal, &i));
    }

    #[test]
    fn cover_heads_prunes_redundant_subscriptions() {
        let mut i = setup();
        let broad = SubscriptionBuilder::new(&mut i)
            .pred("salary", Operator::Ge, 40_000i64)
            .build(SubId(1));
        let narrow = SubscriptionBuilder::new(&mut i)
            .pred("salary", Operator::Ge, 90_000i64)
            .build(SubId(2));
        let unrelated = SubscriptionBuilder::new(&mut i).exists("degree").build(SubId(3));
        // Narrow arrives first; broad must demote it.
        let subs = vec![narrow, broad, unrelated];
        let (heads, pruned) = cover_heads(&subs, &i);
        let head_ids: Vec<SubId> = heads.iter().map(|s| s.id()).collect();
        assert_eq!(head_ids, vec![SubId(1), SubId(3)]);
        assert_eq!(pruned.len(), 1);
        assert_eq!(pruned[0].id(), SubId(2));
    }

    /// Soundness spot-check against actual matching on a grid of events.
    #[test]
    fn covering_is_sound_on_event_grid() {
        let mut i = setup();
        let x = i.intern("x");
        let y = i.intern("y");
        let candidates = vec![
            Subscription::new(SubId(1), vec![Predicate::new(x, Operator::Ge, Value::Int(2))]),
            Subscription::new(
                SubId(2),
                vec![
                    Predicate::new(x, Operator::Ge, Value::Int(4)),
                    Predicate::new(y, Operator::Lt, Value::Int(3)),
                ],
            ),
            Subscription::new(SubId(3), vec![Predicate::new(x, Operator::Eq, Value::Int(4))]),
            Subscription::new(SubId(4), vec![Predicate::exists(x)]),
            Subscription::new(SubId(5), vec![Predicate::new(y, Operator::Ne, Value::Int(0))]),
        ];
        let mut events = Vec::new();
        for vx in -1i64..6 {
            for vy in -1i64..6 {
                events.push(
                    stopss_types::Event::new().with(x, Value::Int(vx)).with(y, Value::Int(vy)),
                );
            }
        }
        for g in &candidates {
            for s in &candidates {
                if covers(g, s, &i) {
                    for e in &events {
                        assert!(
                            !s.matches(e, &i) || g.matches(e, &i),
                            "{} covers {} violated on {}",
                            g.id(),
                            s.id(),
                            e.display(&i)
                        );
                    }
                }
            }
        }
    }
}
