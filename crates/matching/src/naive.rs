//! Linear-scan engine.
//!
//! Checks every live subscription against every event. Quadratic overall,
//! but unbeatable below a few hundred subscriptions and trivially correct —
//! it is the baseline every other engine is differential-tested against,
//! and the "existing pub/sub systems are limited" strawman of experiment
//! E5.

use stopss_types::{Event, FxHashMap, Interner, SubId, Subscription};

use crate::engine::MatchingEngine;

/// Linear-scan matching engine.
#[derive(Clone, Default, Debug)]
pub struct NaiveEngine {
    subs: Vec<Subscription>,
    by_id: FxHashMap<SubId, usize>,
}

impl NaiveEngine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MatchingEngine for NaiveEngine {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn insert(&mut self, sub: Subscription) {
        if let Some(&slot) = self.by_id.get(&sub.id()) {
            self.subs[slot] = sub;
            return;
        }
        self.by_id.insert(sub.id(), self.subs.len());
        self.subs.push(sub);
    }

    fn remove(&mut self, id: SubId) -> bool {
        let Some(slot) = self.by_id.remove(&id) else {
            return false;
        };
        self.subs.swap_remove(slot);
        if let Some(moved) = self.subs.get(slot) {
            self.by_id.insert(moved.id(), slot);
        }
        true
    }

    fn match_event(&mut self, event: &Event, interner: &Interner, out: &mut Vec<SubId>) {
        for sub in &self.subs {
            if sub.matches(event, interner) {
                out.push(sub.id());
            }
        }
    }

    fn len(&self) -> usize {
        self.subs.len()
    }

    fn clear(&mut self) {
        self.subs.clear();
        self.by_id.clear();
    }

    fn boxed_clone(&self) -> Box<dyn MatchingEngine> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::collect_matches;
    use stopss_types::{EventBuilder, Operator, SubscriptionBuilder};

    #[test]
    fn insert_match_remove_roundtrip() {
        let mut i = Interner::new();
        let mut eng = NaiveEngine::new();
        let s1 = SubscriptionBuilder::new(&mut i).term_eq("city", "berlin").build(SubId(1));
        let s2 = SubscriptionBuilder::new(&mut i).pred("temp", Operator::Gt, 20i64).build(SubId(2));
        eng.insert(s1);
        eng.insert(s2);
        assert_eq!(eng.len(), 2);

        let e = EventBuilder::new(&mut i).term("city", "berlin").pair("temp", 25i64).build();
        assert_eq!(collect_matches(&mut eng, &e, &i), vec![SubId(1), SubId(2)]);

        assert!(eng.remove(SubId(1)));
        assert!(!eng.remove(SubId(1)));
        assert_eq!(collect_matches(&mut eng, &e, &i), vec![SubId(2)]);
    }

    #[test]
    fn insert_replaces_same_id() {
        let mut i = Interner::new();
        let mut eng = NaiveEngine::new();
        eng.insert(SubscriptionBuilder::new(&mut i).term_eq("a", "x").build(SubId(1)));
        eng.insert(SubscriptionBuilder::new(&mut i).term_eq("a", "y").build(SubId(1)));
        assert_eq!(eng.len(), 1);
        let ex = EventBuilder::new(&mut i).term("a", "x").build();
        let ey = EventBuilder::new(&mut i).term("a", "y").build();
        assert!(collect_matches(&mut eng, &ex, &i).is_empty());
        assert_eq!(collect_matches(&mut eng, &ey, &i), vec![SubId(1)]);
    }

    #[test]
    fn swap_remove_keeps_index_consistent() {
        let mut i = Interner::new();
        let mut eng = NaiveEngine::new();
        for k in 0..5 {
            eng.insert(
                SubscriptionBuilder::new(&mut i).term_eq("k", &format!("v{k}")).build(SubId(k)),
            );
        }
        assert!(eng.remove(SubId(0)));
        assert!(eng.remove(SubId(4)));
        assert_eq!(eng.len(), 3);
        for k in [1u64, 2, 3] {
            let e = EventBuilder::new(&mut i).term("k", &format!("v{k}")).build();
            assert_eq!(collect_matches(&mut eng, &e, &i), vec![SubId(k)]);
        }
    }

    #[test]
    fn clear_empties_engine() {
        let mut i = Interner::new();
        let mut eng = NaiveEngine::new();
        eng.insert(SubscriptionBuilder::new(&mut i).exists("x").build(SubId(1)));
        eng.clear();
        assert!(eng.is_empty());
        let e = EventBuilder::new(&mut i).pair("x", 1i64).build();
        assert!(collect_matches(&mut eng, &e, &i).is_empty());
    }
}
