//! Access-predicate clustering (Fabret et al., SIGMOD'01).
//!
//! Each subscription that contains an equality predicate is filed under
//! one of them — its *access predicate* — keyed by `(attribute, value)`.
//! An event only examines the clusters keyed by its own pairs, plus a
//! residual pool of subscriptions with no equality predicate. Inside a
//! cluster the remaining predicates are evaluated directly: clusters are
//! small when equality values are selective, which is the workload the
//! optimization targets.
//!
//! The access predicate is chosen to keep clusters balanced: among a
//! subscription's equality predicates we pick the one whose cluster is
//! currently smallest (Fabret et al. use selectivity estimates; cluster
//! size is the observable proxy).

use stopss_types::{Event, FxHashMap, Interner, Operator, SubId, Subscription, Symbol, Value};

use crate::engine::MatchingEngine;

type ClusterKey = (Symbol, Value);

/// Clustered matching engine.
#[derive(Clone, Default, Debug)]
pub struct ClusterEngine {
    clusters: FxHashMap<ClusterKey, Vec<Subscription>>,
    /// Subscriptions with no equality predicate (including universal ones).
    residual: Vec<Subscription>,
    /// id → cluster key (None = residual), for removal.
    by_id: FxHashMap<SubId, Option<ClusterKey>>,
    /// Scratch: cluster keys already probed for the current event.
    probed: Vec<ClusterKey>,
}

impl ClusterEngine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of non-empty clusters (diagnostic).
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Size of the residual (non-clusterable) pool (diagnostic).
    pub fn residual_len(&self) -> usize {
        self.residual.len()
    }

    fn pick_access_predicate(&self, sub: &Subscription) -> Option<ClusterKey> {
        sub.predicates()
            .iter()
            .filter(|p| p.op == Operator::Eq)
            .map(|p| (p.attr, p.value))
            .min_by_key(|key| self.clusters.get(key).map_or(0, Vec::len))
    }
}

impl MatchingEngine for ClusterEngine {
    fn name(&self) -> &'static str {
        "cluster"
    }

    fn insert(&mut self, sub: Subscription) {
        self.remove(sub.id());
        match self.pick_access_predicate(&sub) {
            Some(key) => {
                self.by_id.insert(sub.id(), Some(key));
                self.clusters.entry(key).or_default().push(sub);
            }
            None => {
                self.by_id.insert(sub.id(), None);
                self.residual.push(sub);
            }
        }
    }

    fn remove(&mut self, id: SubId) -> bool {
        let Some(key) = self.by_id.remove(&id) else {
            return false;
        };
        match key {
            Some(key) => {
                if let Some(cluster) = self.clusters.get_mut(&key) {
                    if let Some(pos) = cluster.iter().position(|s| s.id() == id) {
                        cluster.swap_remove(pos);
                    }
                    if cluster.is_empty() {
                        self.clusters.remove(&key);
                    }
                }
            }
            None => {
                if let Some(pos) = self.residual.iter().position(|s| s.id() == id) {
                    self.residual.swap_remove(pos);
                }
            }
        }
        true
    }

    fn match_event(&mut self, event: &Event, interner: &Interner, out: &mut Vec<SubId>) {
        // Residual pool: no access predicate filtered these, scan them all.
        for sub in &self.residual {
            if sub.matches(event, interner) {
                out.push(sub.id());
            }
        }
        // Visit each cluster keyed by an event pair exactly once, even if
        // the (generalized) event repeats a pair.
        self.probed.clear();
        for (attr, value) in event.pairs() {
            let key = (*attr, *value);
            if self.probed.contains(&key) {
                continue;
            }
            self.probed.push(key);
            let Some(cluster) = self.clusters.get(&key) else {
                continue;
            };
            for sub in cluster {
                // The access predicate is satisfied by construction, but the
                // remaining predicates (including other tests on the same
                // attribute) still need checking.
                if sub.matches(event, interner) {
                    out.push(sub.id());
                }
            }
        }
    }

    fn len(&self) -> usize {
        self.by_id.len()
    }

    fn clear(&mut self) {
        self.clusters.clear();
        self.residual.clear();
        self.by_id.clear();
        self.probed.clear();
    }

    fn boxed_clone(&self) -> Box<dyn MatchingEngine> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::collect_matches;
    use stopss_types::{EventBuilder, SubscriptionBuilder};

    #[test]
    fn clustered_subscriptions_match_only_via_their_key() {
        let mut i = Interner::new();
        let mut eng = ClusterEngine::new();
        eng.insert(
            SubscriptionBuilder::new(&mut i)
                .term_eq("city", "berlin")
                .pred("temp", Operator::Gt, 20i64)
                .build(SubId(1)),
        );
        assert_eq!(eng.cluster_count(), 1);

        let hit = EventBuilder::new(&mut i).term("city", "berlin").pair("temp", 25i64).build();
        let cold = EventBuilder::new(&mut i).term("city", "berlin").pair("temp", 15i64).build();
        let elsewhere = EventBuilder::new(&mut i).term("city", "paris").pair("temp", 25i64).build();
        assert_eq!(collect_matches(&mut eng, &hit, &i), vec![SubId(1)]);
        assert!(collect_matches(&mut eng, &cold, &i).is_empty());
        assert!(collect_matches(&mut eng, &elsewhere, &i).is_empty());
    }

    #[test]
    fn residual_pool_handles_no_equality_subscriptions() {
        let mut i = Interner::new();
        let mut eng = ClusterEngine::new();
        eng.insert(
            SubscriptionBuilder::new(&mut i).pred("temp", Operator::Gt, 20i64).build(SubId(1)),
        );
        eng.insert(Subscription::new(SubId(2), vec![]));
        assert_eq!(eng.residual_len(), 2);
        assert_eq!(eng.cluster_count(), 0);

        let e = EventBuilder::new(&mut i).pair("temp", 30i64).build();
        assert_eq!(collect_matches(&mut eng, &e, &i), vec![SubId(1), SubId(2)]);
        let empty = stopss_types::Event::new();
        assert_eq!(collect_matches(&mut eng, &empty, &i), vec![SubId(2)]);
    }

    #[test]
    fn access_predicate_balances_cluster_sizes() {
        let mut i = Interner::new();
        let mut eng = ClusterEngine::new();
        // Ten subscriptions all sharing city=berlin; each also has a unique
        // equality predicate, which should be preferred once the berlin
        // cluster grows.
        for k in 0..10u64 {
            eng.insert(
                SubscriptionBuilder::new(&mut i)
                    .term_eq("city", "berlin")
                    .term_eq("id", &format!("u{k}"))
                    .build(SubId(k)),
            );
        }
        let berlin_key = (i.get("city").unwrap(), Value::Sym(i.get("berlin").unwrap()));
        let berlin_size = eng.clusters.get(&berlin_key).map_or(0, Vec::len);
        assert!(berlin_size <= 1, "balancing keeps the hot cluster small, got {berlin_size}");
    }

    #[test]
    fn duplicate_event_pairs_probe_cluster_once() {
        let mut i = Interner::new();
        let mut eng = ClusterEngine::new();
        eng.insert(SubscriptionBuilder::new(&mut i).term_eq("a", "x").build(SubId(1)));
        let a = i.get("a").unwrap();
        let x = Value::Sym(i.get("x").unwrap());
        let e = Event::from_pairs(vec![(a, x), (a, x)]);
        // collect_matches debug-asserts there are no duplicate emissions.
        assert_eq!(collect_matches(&mut eng, &e, &i), vec![SubId(1)]);
    }

    #[test]
    fn remove_cleans_clusters_and_residual() {
        let mut i = Interner::new();
        let mut eng = ClusterEngine::new();
        eng.insert(SubscriptionBuilder::new(&mut i).term_eq("a", "x").build(SubId(1)));
        eng.insert(SubscriptionBuilder::new(&mut i).exists("b").build(SubId(2)));
        assert!(eng.remove(SubId(1)));
        assert!(eng.remove(SubId(2)));
        assert!(!eng.remove(SubId(2)));
        assert_eq!(eng.len(), 0);
        assert_eq!(eng.cluster_count(), 0);
        assert_eq!(eng.residual_len(), 0);
    }

    #[test]
    fn reinsert_moves_between_pools() {
        let mut i = Interner::new();
        let mut eng = ClusterEngine::new();
        eng.insert(SubscriptionBuilder::new(&mut i).term_eq("a", "x").build(SubId(1)));
        assert_eq!(eng.cluster_count(), 1);
        eng.insert(SubscriptionBuilder::new(&mut i).pred("n", Operator::Lt, 5i64).build(SubId(1)));
        assert_eq!(eng.cluster_count(), 0);
        assert_eq!(eng.residual_len(), 1);
        assert_eq!(eng.len(), 1);
    }
}
