//! Concept hierarchies — the second semantic stage's knowledge source.
//!
//! "Taxonomies represent a way of organizing ontological knowledge using
//! specialization and generalization relationships between different
//! concepts … more general terms are higher up in the hierarchy" (§3.1).
//!
//! The hierarchy is a multi-parent DAG over interned symbols. Cycles are
//! rejected at edge-insertion time. Queries run against a lazily rebuilt
//! *ancestor cache*: for every concept, the sorted list of all ancestors
//! with their minimum distance. Taxonomies are built once and queried per
//! publication, so an O(reachable-pairs) rebuild amortizes to zero on the
//! hot path while `is_a` becomes a binary search and `ancestors` a slice
//! walk.

use stopss_types::sync::RwLock;
use stopss_types::{FxHashMap, Interner, Symbol};

use crate::error::OntologyError;

/// Dense index of a concept inside one taxonomy.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ConceptId(u32);

impl ConceptId {
    #[inline]
    fn idx(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
struct Concept {
    sym: Symbol,
    parents: Vec<ConceptId>,
    children: Vec<ConceptId>,
}

/// One concept's ancestors with minimum distances, sorted by ancestor id.
type AncestorRow = Box<[(ConceptId, u32)]>;

#[derive(Default, Debug)]
struct AncestorCache {
    /// Taxonomy version this cache was built for.
    version: u64,
    /// Per concept: `(ancestor, min_distance)` sorted by ancestor id.
    rows: Vec<AncestorRow>,
}

/// A concept hierarchy (specialization/generalization DAG).
#[derive(Debug, Default)]
pub struct Taxonomy {
    ids: FxHashMap<Symbol, ConceptId>,
    concepts: Vec<Concept>,
    version: u64,
    cache: RwLock<AncestorCache>,
}

impl Clone for Taxonomy {
    fn clone(&self) -> Self {
        Taxonomy {
            ids: self.ids.clone(),
            concepts: self.concepts.clone(),
            version: self.version,
            cache: RwLock::new(AncestorCache::default()),
        }
    }
}

impl Taxonomy {
    /// Creates an empty taxonomy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of concepts.
    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    /// True if no concepts exist.
    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty()
    }

    /// True if `sym` is a known concept.
    pub fn contains(&self, sym: Symbol) -> bool {
        self.ids.contains_key(&sym)
    }

    /// Declares a concept (idempotent) and returns its id.
    pub fn add_concept(&mut self, sym: Symbol) -> ConceptId {
        if let Some(&id) = self.ids.get(&sym) {
            return id;
        }
        let id = ConceptId(u32::try_from(self.concepts.len()).expect("too many concepts"));
        self.concepts.push(Concept { sym, parents: Vec::new(), children: Vec::new() });
        self.ids.insert(sym, id);
        self.version += 1;
        id
    }

    /// Declares `child is-a parent`. Both concepts are created on demand.
    /// Rejects self-loops and edges that would close a cycle.
    pub fn add_isa(
        &mut self,
        child: Symbol,
        parent: Symbol,
        interner: &Interner,
    ) -> Result<(), OntologyError> {
        let cycle_error = |i: &Interner| OntologyError::CycleDetected {
            child: i.try_resolve(child).unwrap_or("<?>").to_owned(),
            parent: i.try_resolve(parent).unwrap_or("<?>").to_owned(),
        };
        if child == parent {
            return Err(cycle_error(interner));
        }
        let child_id = self.add_concept(child);
        let parent_id = self.add_concept(parent);
        if self.concepts[child_id.idx()].parents.contains(&parent_id) {
            return Ok(()); // duplicate edge, idempotent
        }
        // The edge child -> parent closes a cycle iff parent already
        // reaches child going upward.
        if self.reaches_upward(parent_id, child_id) {
            return Err(cycle_error(interner));
        }
        self.concepts[child_id.idx()].parents.push(parent_id);
        self.concepts[parent_id.idx()].children.push(child_id);
        self.version += 1;
        Ok(())
    }

    /// BFS over parent edges, bypassing the cache (used for cycle checks
    /// during construction).
    fn reaches_upward(&self, from: ConceptId, target: ConceptId) -> bool {
        let mut seen = vec![false; self.concepts.len()];
        let mut queue = vec![from];
        seen[from.idx()] = true;
        while let Some(c) = queue.pop() {
            if c == target {
                return true;
            }
            for &p in &self.concepts[c.idx()].parents {
                if !seen[p.idx()] {
                    seen[p.idx()] = true;
                    queue.push(p);
                }
            }
        }
        false
    }

    /// Rebuilds the ancestor cache if the taxonomy changed since the last
    /// build, then runs `f` against the fresh cache.
    fn with_cache<R>(&self, f: impl FnOnce(&AncestorCache) -> R) -> R {
        {
            let cache = self.cache.read();
            if cache.version == self.version && cache.rows.len() == self.concepts.len() {
                return f(&cache);
            }
        }
        let mut cache = self.cache.write();
        if cache.version != self.version || cache.rows.len() != self.concepts.len() {
            *cache = self.build_cache();
        }
        f(&cache)
    }

    /// Computes ancestor rows bottom-up in topological order (parents
    /// before children is not guaranteed by insertion order, so a DFS
    /// post-order over the parent relation is used).
    fn build_cache(&self) -> AncestorCache {
        let n = self.concepts.len();
        let mut rows: Vec<Option<AncestorRow>> = vec![None; n];
        // Iterative DFS with an explicit stack; the taxonomy is acyclic by
        // construction.
        for start in 0..n {
            if rows[start].is_some() {
                continue;
            }
            let mut stack = vec![(ConceptId(start as u32), false)];
            while let Some((node, expanded)) = stack.pop() {
                if rows[node.idx()].is_some() {
                    continue;
                }
                if expanded {
                    // All parents have rows: merge {parent: 1} ∪ {anc(parent)+1}.
                    let mut acc: FxHashMap<ConceptId, u32> = FxHashMap::default();
                    for &p in &self.concepts[node.idx()].parents {
                        acc.entry(p).and_modify(|d| *d = (*d).min(1)).or_insert(1);
                        let parent_row = rows[p.idx()].as_ref().expect("post-order");
                        for &(anc, d) in parent_row.iter() {
                            acc.entry(anc)
                                .and_modify(|cur| *cur = (*cur).min(d + 1))
                                .or_insert(d + 1);
                        }
                    }
                    let mut row: Vec<(ConceptId, u32)> = acc.into_iter().collect();
                    row.sort_unstable_by_key(|(c, _)| *c);
                    rows[node.idx()] = Some(row.into_boxed_slice());
                } else {
                    stack.push((node, true));
                    for &p in &self.concepts[node.idx()].parents {
                        if rows[p.idx()].is_none() {
                            stack.push((p, false));
                        }
                    }
                }
            }
        }
        AncestorCache {
            version: self.version,
            rows: rows.into_iter().map(|r| r.expect("all rows built")).collect(),
        }
    }

    /// All ancestors of `sym` with their minimum distance (1 = direct
    /// parent). Unknown concepts have no ancestors. Order is unspecified.
    pub fn ancestors(&self, sym: Symbol) -> Vec<(Symbol, u32)> {
        let mut out = Vec::new();
        self.for_each_ancestor(sym, &mut |anc, d| out.push((anc, d)));
        out
    }

    /// Visits every ancestor of `sym` with its minimum distance, without
    /// allocating (hot path of the hierarchy stage).
    pub fn for_each_ancestor(&self, sym: Symbol, f: &mut dyn FnMut(Symbol, u32)) {
        let Some(&id) = self.ids.get(&sym) else {
            return;
        };
        self.with_cache(|cache| {
            for &(anc, d) in cache.rows[id.idx()].iter() {
                f(self.concepts[anc.idx()].sym, d);
            }
        });
    }

    /// All descendants of `sym` with their minimum distance (BFS over
    /// child edges; used at subscribe time by the subscription-rewrite
    /// strategy, so it trades memory for simplicity instead of caching).
    pub fn descendants(&self, sym: Symbol) -> Vec<(Symbol, u32)> {
        let Some(&id) = self.ids.get(&sym) else {
            return Vec::new();
        };
        let mut dist: FxHashMap<ConceptId, u32> = FxHashMap::default();
        let mut queue = std::collections::VecDeque::new();
        queue.push_back((id, 0u32));
        while let Some((c, d)) = queue.pop_front() {
            for &child in &self.concepts[c.idx()].children {
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(child) {
                    e.insert(d + 1);
                    queue.push_back((child, d + 1));
                }
            }
        }
        dist.into_iter().map(|(c, d)| (self.concepts[c.idx()].sym, d)).collect()
    }

    /// True iff `special` is a strict descendant of `general` — the
    /// paper's rule R1 ("events that contain more specialized concepts
    /// match subscriptions that contain more generalized terms").
    pub fn is_a(&self, special: Symbol, general: Symbol) -> bool {
        self.distance(special, general).is_some()
    }

    /// Minimum upward distance from `special` to `general`, if `general`
    /// is an ancestor. `None` for unrelated concepts and for
    /// `special == general` (distance 0 is not "more specialized").
    pub fn distance(&self, special: Symbol, general: Symbol) -> Option<u32> {
        let (&sid, &gid) = (self.ids.get(&special)?, self.ids.get(&general)?);
        self.with_cache(|cache| {
            let row = &cache.rows[sid.idx()];
            row.binary_search_by_key(&gid, |(c, _)| *c).ok().map(|pos| row[pos].1)
        })
    }

    /// Direct parents of `sym`.
    pub fn parents(&self, sym: Symbol) -> Vec<Symbol> {
        match self.ids.get(&sym) {
            Some(&id) => {
                self.concepts[id.idx()].parents.iter().map(|p| self.concepts[p.idx()].sym).collect()
            }
            None => Vec::new(),
        }
    }

    /// Direct children of `sym`.
    pub fn children(&self, sym: Symbol) -> Vec<Symbol> {
        match self.ids.get(&sym) {
            Some(&id) => self.concepts[id.idx()]
                .children
                .iter()
                .map(|c| self.concepts[c.idx()].sym)
                .collect(),
            None => Vec::new(),
        }
    }

    /// Concepts with no parents.
    pub fn roots(&self) -> Vec<Symbol> {
        self.concepts.iter().filter(|c| c.parents.is_empty()).map(|c| c.sym).collect()
    }

    /// Iterates all concepts in creation order.
    pub fn iter_concepts(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.concepts.iter().map(|c| c.sym)
    }

    /// Iterates all is-a edges as `(child, parent)`.
    pub fn iter_edges(&self) -> impl Iterator<Item = (Symbol, Symbol)> + '_ {
        self.concepts
            .iter()
            .flat_map(move |c| c.parents.iter().map(move |p| (c.sym, self.concepts[p.idx()].sym)))
    }

    /// Number of is-a edges.
    pub fn edge_count(&self) -> usize {
        self.concepts.iter().map(|c| c.parents.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_degrees() -> (Interner, Taxonomy) {
        // degree -> graduate_degree -> {phd, msc}; degree -> undergrad
        let mut i = Interner::new();
        let mut t = Taxonomy::new();
        let degree = i.intern("degree");
        let grad = i.intern("graduate_degree");
        let phd = i.intern("phd");
        let msc = i.intern("msc");
        let under = i.intern("undergraduate_degree");
        t.add_isa(grad, degree, &i).unwrap();
        t.add_isa(phd, grad, &i).unwrap();
        t.add_isa(msc, grad, &i).unwrap();
        t.add_isa(under, degree, &i).unwrap();
        (i, t)
    }

    #[test]
    fn is_a_follows_transitive_specialization() {
        let (i, t) = build_degrees();
        let phd = i.get("phd").unwrap();
        let grad = i.get("graduate_degree").unwrap();
        let degree = i.get("degree").unwrap();
        let under = i.get("undergraduate_degree").unwrap();
        assert!(t.is_a(phd, grad));
        assert!(t.is_a(phd, degree));
        assert!(!t.is_a(degree, phd), "rule R2: general does not match special");
        assert!(!t.is_a(phd, under));
        assert!(!t.is_a(phd, phd), "a concept is not *more* specialized than itself");
    }

    #[test]
    fn distances_are_minimal_path_lengths() {
        let (i, t) = build_degrees();
        let phd = i.get("phd").unwrap();
        let grad = i.get("graduate_degree").unwrap();
        let degree = i.get("degree").unwrap();
        assert_eq!(t.distance(phd, grad), Some(1));
        assert_eq!(t.distance(phd, degree), Some(2));
        assert_eq!(t.distance(grad, degree), Some(1));
        assert_eq!(t.distance(degree, phd), None);
    }

    #[test]
    fn multi_parent_takes_minimum_distance() {
        let mut i = Interner::new();
        let mut t = Taxonomy::new();
        let (a, b, c, top) = (i.intern("a"), i.intern("b"), i.intern("c"), i.intern("top"));
        // a -> b -> top and a -> c -> top plus a shortcut a -> top.
        t.add_isa(a, b, &i).unwrap();
        t.add_isa(b, top, &i).unwrap();
        t.add_isa(a, c, &i).unwrap();
        t.add_isa(c, top, &i).unwrap();
        t.add_isa(a, top, &i).unwrap();
        assert_eq!(t.distance(a, top), Some(1), "shortcut wins");
        let ancs = t.ancestors(a);
        assert_eq!(ancs.len(), 3);
    }

    #[test]
    fn cycles_are_rejected() {
        let mut i = Interner::new();
        let mut t = Taxonomy::new();
        let (a, b, c) = (i.intern("a"), i.intern("b"), i.intern("c"));
        t.add_isa(a, b, &i).unwrap();
        t.add_isa(b, c, &i).unwrap();
        let err = t.add_isa(c, a, &i).unwrap_err();
        assert!(matches!(err, OntologyError::CycleDetected { .. }));
        let self_loop = t.add_isa(a, a, &i).unwrap_err();
        assert!(matches!(self_loop, OntologyError::CycleDetected { .. }));
        // Structure unchanged by the failed inserts.
        assert_eq!(t.edge_count(), 2);
    }

    #[test]
    fn duplicate_edges_are_idempotent() {
        let mut i = Interner::new();
        let mut t = Taxonomy::new();
        let (a, b) = (i.intern("a"), i.intern("b"));
        t.add_isa(a, b, &i).unwrap();
        t.add_isa(a, b, &i).unwrap();
        assert_eq!(t.edge_count(), 1);
    }

    #[test]
    fn descendants_mirror_ancestors() {
        let (i, t) = build_degrees();
        let degree = i.get("degree").unwrap();
        let mut descendants = t.descendants(degree);
        descendants.sort_unstable_by_key(|(s, _)| *s);
        assert_eq!(descendants.len(), 4);
        for (sym, d) in descendants {
            assert_eq!(t.distance(sym, degree), Some(d));
        }
    }

    #[test]
    fn unknown_symbols_have_empty_relations() {
        let (mut i, t) = build_degrees();
        let ghost = i.intern("ghost");
        assert!(t.ancestors(ghost).is_empty());
        assert!(t.descendants(ghost).is_empty());
        assert!(!t.is_a(ghost, ghost));
        assert!(t.parents(ghost).is_empty());
        assert!(t.children(ghost).is_empty());
    }

    #[test]
    fn cache_invalidates_on_mutation() {
        let mut i = Interner::new();
        let mut t = Taxonomy::new();
        let (a, b, c) = (i.intern("a"), i.intern("b"), i.intern("c"));
        t.add_isa(a, b, &i).unwrap();
        assert!(t.is_a(a, b)); // builds the cache
        t.add_isa(b, c, &i).unwrap();
        assert!(t.is_a(a, c), "cache must observe the new edge");
    }

    #[test]
    fn roots_and_iteration() {
        let (i, t) = build_degrees();
        let degree = i.get("degree").unwrap();
        assert_eq!(t.roots(), vec![degree]);
        assert_eq!(t.iter_concepts().count(), 5);
        assert_eq!(t.iter_edges().count(), t.edge_count());
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn clone_preserves_structure() {
        let (i, t) = build_degrees();
        let t2 = t.clone();
        let phd = i.get("phd").unwrap();
        let degree = i.get("degree").unwrap();
        assert!(t2.is_a(phd, degree));
        assert_eq!(t2.len(), t.len());
    }

    #[test]
    fn deep_chain_has_linear_distances() {
        let mut i = Interner::new();
        let mut t = Taxonomy::new();
        let syms: Vec<Symbol> = (0..50).map(|k| i.intern(&format!("c{k}"))).collect();
        for w in syms.windows(2) {
            t.add_isa(w[0], w[1], &i).unwrap();
        }
        assert_eq!(t.distance(syms[0], syms[49]), Some(49));
        assert_eq!(t.ancestors(syms[0]).len(), 49);
        assert_eq!(t.ancestors(syms[49]).len(), 0);
    }
}
