//! Error types for the ontology substrate.

use std::fmt;

/// Errors raised while building or mutating ontologies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OntologyError {
    /// Adding the is-a edge would create a cycle in the concept hierarchy.
    CycleDetected {
        /// Human-readable names of the offending edge.
        child: String,
        /// The proposed parent that is already a descendant of `child`.
        parent: String,
    },
    /// A term was used as a synonym of two different roots.
    SynonymConflict {
        /// The alias in conflict.
        alias: String,
        /// The root it is already attached to.
        existing_root: String,
        /// The root the caller tried to attach it to.
        new_root: String,
    },
    /// A concept referenced before being declared (strict modes only).
    UnknownConcept(String),
    /// A named domain was registered twice.
    DuplicateDomain(String),
    /// A mapping function name was registered twice within one registry.
    DuplicateMapping(String),
}

impl fmt::Display for OntologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OntologyError::CycleDetected { child, parent } => {
                write!(f, "is-a edge {child} -> {parent} would create a cycle")
            }
            OntologyError::SynonymConflict { alias, existing_root, new_root } => write!(
                f,
                "term '{alias}' is already a synonym of '{existing_root}', cannot attach to '{new_root}'"
            ),
            OntologyError::UnknownConcept(name) => write!(f, "unknown concept '{name}'"),
            OntologyError::DuplicateDomain(name) => write!(f, "domain '{name}' already registered"),
            OntologyError::DuplicateMapping(name) => {
                write!(f, "mapping function '{name}' already registered")
            }
        }
    }
}

impl std::error::Error for OntologyError {}

/// Errors raised while parsing the `.sto` ontology text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending input.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    /// Builds a parse error.
    pub fn new(line: usize, message: impl Into<String>) -> Self {
        ParseError { line, message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_readably() {
        let e = OntologyError::CycleDetected { child: "a".into(), parent: "b".into() };
        assert_eq!(e.to_string(), "is-a edge a -> b would create a cycle");
        let p = ParseError::new(3, "unexpected token");
        assert_eq!(p.to_string(), "line 3: unexpected token");
    }
}
