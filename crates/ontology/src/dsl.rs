//! The `.sto` ontology text format.
//!
//! The paper's future work is "automating translation of ontologies
//! expressed in DAML+OIL into a more efficient representation suitable for
//! S-ToPSS". This module is that translation layer for a small declarative
//! surface syntax (DAML+OIL's RDF/XML carrier is incidental; the compile
//! step into hash/bitset runtime structures is the interesting part):
//!
//! ```text
//! # job-finder domain
//! domain jobs
//!
//! synonyms university = school, college
//! synonyms "professional experience" = "work experience"
//!
//! concept skill
//! isa phd -> graduate_degree -> degree
//!
//! map experience_from_graduation:
//!     when graduation_year exists
//!     emit "professional experience" = now - graduation_year
//! end
//! ```
//!
//! * terms are identifiers (`[A-Za-z_][A-Za-z0-9_\-]*`) or quoted strings;
//! * `isa a -> b -> c` declares the chain `a is-a b`, `b is-a c`;
//! * `when` guards use `exists = != < <= > >=`; guard right-hand sides are
//!   constants (bare identifiers denote categorical terms);
//! * `emit attr = expr` productions: identifiers (bare or quoted)
//!   reference attributes, `term(x)` is a categorical constant, `now` is
//!   the present date.

use stopss_types::{Interner, Operator, Value};

use crate::domain::Ontology;
use crate::error::ParseError;
use crate::expr::Expr;
use crate::mapping::{Guard, MappingFunction, PatternItem, Production};

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Quoted(String),
    Int(i64),
    Float(f64),
    /// Punctuation / operators: `= != < <= > >= -> ( ) , : + - * /`.
    Punct(&'static str),
}

fn tokenize(line: &str, line_no: usize) -> Result<Vec<Tok>, ParseError> {
    let mut toks = Vec::new();
    let bytes = line.as_bytes();
    let mut k = 0;
    while k < bytes.len() {
        let c = bytes[k] as char;
        match c {
            ' ' | '\t' => k += 1,
            '#' => break,
            '"' => {
                let start = k + 1;
                let mut end = start;
                while end < bytes.len() && bytes[end] != b'"' {
                    end += 1;
                }
                if end == bytes.len() {
                    return Err(ParseError::new(line_no, "unterminated string literal"));
                }
                toks.push(Tok::Quoted(line[start..end].to_owned()));
                k = end + 1;
            }
            '(' | ')' | ',' | ':' | '+' | '*' | '/' => {
                toks.push(Tok::Punct(match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    ':' => ":",
                    '+' => "+",
                    '*' => "*",
                    _ => "/",
                }));
                k += 1;
            }
            '-' => {
                if bytes.get(k + 1) == Some(&b'>') {
                    toks.push(Tok::Punct("->"));
                    k += 2;
                } else {
                    toks.push(Tok::Punct("-"));
                    k += 1;
                }
            }
            '=' => {
                toks.push(Tok::Punct("="));
                k += 1;
            }
            '!' => {
                if bytes.get(k + 1) == Some(&b'=') {
                    toks.push(Tok::Punct("!="));
                    k += 2;
                } else {
                    return Err(ParseError::new(line_no, "expected '=' after '!'"));
                }
            }
            '<' | '>' => {
                if bytes.get(k + 1) == Some(&b'=') {
                    toks.push(Tok::Punct(if c == '<' { "<=" } else { ">=" }));
                    k += 2;
                } else {
                    toks.push(Tok::Punct(if c == '<' { "<" } else { ">" }));
                    k += 1;
                }
            }
            _ if c.is_ascii_digit() => {
                let start = k;
                let mut is_float = false;
                while k < bytes.len()
                    && ((bytes[k] as char).is_ascii_digit() || bytes[k] == b'.' || bytes[k] == b'_')
                {
                    if bytes[k] == b'.' {
                        is_float = true;
                    }
                    k += 1;
                }
                let text: String = line[start..k].chars().filter(|c| *c != '_').collect();
                if is_float {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| ParseError::new(line_no, format!("bad float '{text}'")))?;
                    toks.push(Tok::Float(v));
                } else {
                    let v: i64 = text
                        .parse()
                        .map_err(|_| ParseError::new(line_no, format!("bad integer '{text}'")))?;
                    toks.push(Tok::Int(v));
                }
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let start = k;
                while k < bytes.len() {
                    let c = bytes[k] as char;
                    if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                        // `->` must not be swallowed by identifiers like `a-`.
                        if c == '-' && bytes.get(k + 1) == Some(&b'>') {
                            break;
                        }
                        k += 1;
                    } else {
                        break;
                    }
                }
                toks.push(Tok::Ident(line[start..k].to_owned()));
            }
            other => {
                return Err(ParseError::new(line_no, format!("unexpected character '{other}'")));
            }
        }
    }
    Ok(toks)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Cursor<'a> {
    toks: &'a [Tok],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn new(toks: &'a [Tok], line: usize) -> Self {
        Cursor { toks, pos: 0, line }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Punct(got)) if got == p => Ok(()),
            other => Err(ParseError::new(self.line, format!("expected '{p}', found {other:?}"))),
        }
    }

    /// A term: identifier or quoted string.
    fn term(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            Some(Tok::Quoted(s)) => Ok(s),
            other => Err(ParseError::new(self.line, format!("expected a term, found {other:?}"))),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn expect_end(&self) -> Result<(), ParseError> {
        if self.at_end() {
            Ok(())
        } else {
            Err(ParseError::new(
                self.line,
                format!("trailing tokens: {:?}", &self.toks[self.pos..]),
            ))
        }
    }
}

fn parse_guard_op(tok: &Tok, line: usize) -> Result<Operator, ParseError> {
    match tok {
        Tok::Punct("=") => Ok(Operator::Eq),
        Tok::Punct("!=") => Ok(Operator::Ne),
        Tok::Punct("<") => Ok(Operator::Lt),
        Tok::Punct("<=") => Ok(Operator::Le),
        Tok::Punct(">") => Ok(Operator::Gt),
        Tok::Punct(">=") => Ok(Operator::Ge),
        Tok::Ident(s) if s == "prefix" => Ok(Operator::Prefix),
        Tok::Ident(s) if s == "suffix" => Ok(Operator::Suffix),
        Tok::Ident(s) if s == "contains" => Ok(Operator::Contains),
        other => {
            Err(ParseError::new(line, format!("expected comparison operator, found {other:?}")))
        }
    }
}

/// Constant values in guard position: numbers, quoted strings, bare terms,
/// booleans.
fn parse_const(cur: &mut Cursor<'_>, interner: &mut Interner) -> Result<Value, ParseError> {
    match cur.next() {
        Some(Tok::Int(v)) => Ok(Value::Int(v)),
        Some(Tok::Float(v)) => Ok(Value::Float(v)),
        Some(Tok::Quoted(s)) => Ok(Value::Sym(interner.intern(&s))),
        Some(Tok::Ident(s)) if s == "true" => Ok(Value::Bool(true)),
        Some(Tok::Ident(s)) if s == "false" => Ok(Value::Bool(false)),
        Some(Tok::Ident(s)) => Ok(Value::Sym(interner.intern(&s))),
        Some(Tok::Punct("-")) => match cur.next() {
            Some(Tok::Int(v)) => Ok(Value::Int(-v)),
            Some(Tok::Float(v)) => Ok(Value::Float(-v)),
            other => Err(ParseError::new(
                cur.line,
                format!("expected number after '-', found {other:?}"),
            )),
        },
        other => Err(ParseError::new(cur.line, format!("expected a constant, found {other:?}"))),
    }
}

/// Recursive-descent expression parser (see module docs for the grammar).
fn parse_expr(cur: &mut Cursor<'_>, interner: &mut Interner) -> Result<Expr, ParseError> {
    let mut lhs = parse_term(cur, interner)?;
    while let Some(Tok::Punct(p @ ("+" | "-"))) = cur.peek() {
        let op = *p;
        cur.next();
        let rhs = parse_term(cur, interner)?;
        lhs = if op == "+" { Expr::add(lhs, rhs) } else { Expr::sub(lhs, rhs) };
    }
    Ok(lhs)
}

fn parse_term(cur: &mut Cursor<'_>, interner: &mut Interner) -> Result<Expr, ParseError> {
    let mut lhs = parse_factor(cur, interner)?;
    while let Some(Tok::Punct(p @ ("*" | "/"))) = cur.peek() {
        let op = *p;
        cur.next();
        let rhs = parse_factor(cur, interner)?;
        lhs = if op == "*" { Expr::mul(lhs, rhs) } else { Expr::div(lhs, rhs) };
    }
    Ok(lhs)
}

fn parse_factor(cur: &mut Cursor<'_>, interner: &mut Interner) -> Result<Expr, ParseError> {
    match cur.next() {
        Some(Tok::Punct("-")) => Ok(Expr::neg(parse_factor(cur, interner)?)),
        Some(Tok::Punct("(")) => {
            let inner = parse_expr(cur, interner)?;
            cur.expect_punct(")")?;
            Ok(inner)
        }
        Some(Tok::Int(v)) => Ok(Expr::Const(Value::Int(v))),
        Some(Tok::Float(v)) => Ok(Expr::Const(Value::Float(v))),
        // Quoting is name escaping: a quoted string in expression position
        // references an attribute, exactly like a bare identifier.
        Some(Tok::Quoted(s)) => Ok(Expr::Attr(interner.intern(&s))),
        Some(Tok::Ident(name)) => match name.as_str() {
            "now" => Ok(Expr::Now),
            "true" => Ok(Expr::Const(Value::Bool(true))),
            "false" => Ok(Expr::Const(Value::Bool(false))),
            // Categorical constants are explicit: term(mainframe_developer).
            "term" => {
                cur.expect_punct("(")?;
                let name = cur.term()?;
                cur.expect_punct(")")?;
                Ok(Expr::Const(Value::Sym(interner.intern(&name))))
            }
            "min" | "max" => {
                cur.expect_punct("(")?;
                let a = parse_expr(cur, interner)?;
                cur.expect_punct(",")?;
                let b = parse_expr(cur, interner)?;
                cur.expect_punct(")")?;
                Ok(if name == "min" { Expr::min(a, b) } else { Expr::max(a, b) })
            }
            _ => Ok(Expr::Attr(interner.intern(&name))),
        },
        other => {
            Err(ParseError::new(cur.line, format!("unexpected token in expression: {other:?}")))
        }
    }
}

/// In-progress `map` block.
struct MapBlock {
    name: String,
    start_line: usize,
    pattern: Vec<PatternItem>,
    produce: Vec<Production>,
}

/// Parses `.sto` text into an [`Ontology`], interning terms into
/// `interner`. The `domain` directive names the ontology (optional; the
/// fallback is `"default"`).
pub fn parse_ontology(text: &str, interner: &mut Interner) -> Result<Ontology, ParseError> {
    let mut ontology = Ontology::new("default");
    let mut block: Option<MapBlock> = None;

    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let toks = tokenize(raw_line, line_no)?;
        if toks.is_empty() {
            continue;
        }
        let mut cur = Cursor::new(&toks, line_no);
        let head = match cur.next() {
            Some(Tok::Ident(s)) => s,
            other => {
                return Err(ParseError::new(
                    line_no,
                    format!("expected directive, found {other:?}"),
                ))
            }
        };

        if let Some(current) = block.as_mut() {
            match head.as_str() {
                "when" => {
                    let attr = interner.intern(&cur.term()?);
                    match cur.peek() {
                        Some(Tok::Ident(s)) if s == "exists" => {
                            cur.next();
                            current.pattern.push(PatternItem { attr, guard: None });
                        }
                        Some(tok) => {
                            let op = parse_guard_op(&tok.clone(), line_no)?;
                            cur.next();
                            let value = parse_const(&mut cur, interner)?;
                            current
                                .pattern
                                .push(PatternItem { attr, guard: Some(Guard { op, value }) });
                        }
                        None => {
                            return Err(ParseError::new(line_no, "expected 'exists' or comparison"))
                        }
                    }
                    cur.expect_end()?;
                }
                "emit" => {
                    let attr = interner.intern(&cur.term()?);
                    cur.expect_punct("=")?;
                    let expr = parse_expr(&mut cur, interner)?;
                    cur.expect_end()?;
                    current.produce.push(Production { attr, expr });
                }
                "end" => {
                    cur.expect_end()?;
                    let done = block.take().expect("inside block");
                    if done.pattern.is_empty() {
                        return Err(ParseError::new(
                            done.start_line,
                            format!("map '{}' needs at least one 'when' clause", done.name),
                        ));
                    }
                    if done.produce.is_empty() {
                        return Err(ParseError::new(
                            done.start_line,
                            format!("map '{}' needs at least one 'emit' clause", done.name),
                        ));
                    }
                    ontology
                        .mappings
                        .register(MappingFunction::new(done.name, done.pattern, done.produce))
                        .map_err(|e| ParseError::new(line_no, e.to_string()))?;
                }
                other => {
                    return Err(ParseError::new(
                        line_no,
                        format!("expected 'when'/'emit'/'end' inside map block, found '{other}'"),
                    ))
                }
            }
            continue;
        }

        match head.as_str() {
            "domain" => {
                let name = cur.term()?;
                cur.expect_end()?;
                ontology = rename(ontology, name);
            }
            "synonyms" => {
                let root = interner.intern(&cur.term()?);
                cur.expect_punct("=")?;
                loop {
                    let alias = interner.intern(&cur.term()?);
                    ontology
                        .synonyms
                        .add_synonym(root, alias, interner)
                        .map_err(|e| ParseError::new(line_no, e.to_string()))?;
                    match cur.peek() {
                        Some(Tok::Punct(",")) => {
                            cur.next();
                        }
                        None => break,
                        other => {
                            return Err(ParseError::new(
                                line_no,
                                format!("expected ',', found {other:?}"),
                            ))
                        }
                    }
                }
            }
            "concept" => {
                let sym = interner.intern(&cur.term()?);
                cur.expect_end()?;
                ontology.taxonomy.add_concept(sym);
            }
            "isa" => {
                let mut prev = interner.intern(&cur.term()?);
                cur.expect_punct("->")?;
                loop {
                    let parent = interner.intern(&cur.term()?);
                    ontology
                        .taxonomy
                        .add_isa(prev, parent, interner)
                        .map_err(|e| ParseError::new(line_no, e.to_string()))?;
                    prev = parent;
                    match cur.peek() {
                        Some(Tok::Punct("->")) => {
                            cur.next();
                        }
                        None => break,
                        other => {
                            return Err(ParseError::new(
                                line_no,
                                format!("expected '->', found {other:?}"),
                            ))
                        }
                    }
                }
            }
            "map" => {
                let name = cur.term()?;
                cur.expect_punct(":")?;
                cur.expect_end()?;
                block = Some(MapBlock {
                    name,
                    start_line: line_no,
                    pattern: Vec::new(),
                    produce: Vec::new(),
                });
            }
            "end" => return Err(ParseError::new(line_no, "'end' outside of a map block")),
            other => return Err(ParseError::new(line_no, format!("unknown directive '{other}'"))),
        }
    }

    if let Some(unclosed) = block {
        return Err(ParseError::new(
            unclosed.start_line,
            format!("map '{}' is never closed with 'end'", unclosed.name),
        ));
    }
    Ok(ontology)
}

fn rename(o: Ontology, name: String) -> Ontology {
    let mut renamed = Ontology::new(name);
    renamed.synonyms = o.synonyms;
    renamed.taxonomy = o.taxonomy;
    renamed.mappings = o.mappings;
    renamed
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn quote_term(term: &str) -> String {
    let is_plain_ident = !term.is_empty()
        && term.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && term.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        && !term.contains("->")
        && !matches!(term, "now" | "true" | "false" | "min" | "max" | "exists" | "term");
    if is_plain_ident {
        term.to_owned()
    } else {
        format!("\"{term}\"")
    }
}

/// Serializes an ontology back to `.sto` text (round-trips through
/// [`parse_ontology`]).
pub fn write_ontology(ontology: &Ontology, interner: &Interner) -> String {
    use std::fmt::Write;

    let name = |sym| quote_term(interner.try_resolve(sym).unwrap_or("<?>"));
    let mut out = String::new();
    writeln!(out, "domain {}", quote_term(ontology.name())).unwrap();

    let mut groups: Vec<_> = ontology.synonyms.iter_groups().collect();
    groups.sort_by_key(|(root, _)| *root);
    for (root, members) in groups {
        let aliases: Vec<String> = members.iter().map(|m| name(*m)).collect();
        writeln!(out, "synonyms {} = {}", name(root), aliases.join(", ")).unwrap();
    }

    for concept in ontology.taxonomy.iter_concepts() {
        if ontology.taxonomy.parents(concept).is_empty()
            && ontology.taxonomy.children(concept).is_empty()
        {
            writeln!(out, "concept {}", name(concept)).unwrap();
        }
    }
    for (child, parent) in ontology.taxonomy.iter_edges() {
        writeln!(out, "isa {} -> {}", name(child), name(parent)).unwrap();
    }

    for (_, func) in ontology.mappings.iter() {
        writeln!(out, "map {}:", quote_term(&func.name)).unwrap();
        for item in &func.pattern {
            match &item.guard {
                None => writeln!(out, "    when {} exists", name(item.attr)).unwrap(),
                Some(g) => {
                    let value = match g.value {
                        Value::Sym(s) => quote_term(interner.try_resolve(s).unwrap_or("<?>")),
                        other => format!("{}", other.display(interner)),
                    };
                    writeln!(out, "    when {} {} {}", name(item.attr), g.op, value).unwrap();
                }
            }
        }
        for prod in &func.produce {
            writeln!(out, "    emit {} = {}", name(prod.attr), prod.expr.display(interner))
                .unwrap();
        }
        writeln!(out, "end").unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::SemanticSource;
    use stopss_types::EventBuilder;

    const JOBS: &str = r#"
# The paper's job-finder domain, abridged.
domain jobs

synonyms university = school, college
synonyms "professional experience" = "work experience"

concept isolated
isa phd -> graduate_degree -> degree
isa msc -> graduate_degree

map experience_from_graduation:
    when graduation_year exists
    emit "professional experience" = now - graduation_year
end

map mainframe_inference:
    when skill = cobol
    when year >= 1960
    when year <= 1980
    emit title = term("mainframe developer")
end
"#;

    #[test]
    fn parses_the_full_surface_syntax() {
        let mut i = Interner::new();
        let o = parse_ontology(JOBS, &mut i).unwrap();
        assert_eq!(o.name(), "jobs");
        let (aliases, concepts, edges, maps) = o.stats();
        assert_eq!(aliases, 3);
        assert_eq!(concepts, 5, "isolated + 4 hierarchy concepts");
        assert_eq!(edges, 3);
        assert_eq!(maps, 2);

        let school = i.get("school").unwrap();
        let university = i.get("university").unwrap();
        assert_eq!(o.resolve_synonym(school), university);
        let phd = i.get("phd").unwrap();
        let degree = i.get("degree").unwrap();
        assert_eq!(o.distance(phd, degree), Some(2));
    }

    #[test]
    fn parsed_mapping_functions_fire() {
        let mut i = Interner::new();
        let o = parse_ontology(JOBS, &mut i).unwrap();
        let e = EventBuilder::new(&mut i)
            .pair("graduation_year", 1993i64)
            .term("skill", "cobol")
            .pair("year", 1975i64)
            .build();
        let mut produced = Vec::new();
        o.apply_mappings(&e, &i, 2003, &mut |name, pairs| produced.push((name.to_owned(), pairs)));
        produced.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(produced.len(), 2);
        assert_eq!(produced[0].0, "experience_from_graduation");
        let exp = i.get("professional experience").unwrap();
        assert_eq!(produced[0].1, vec![(exp, Value::Int(10))]);
        assert_eq!(produced[1].0, "mainframe_inference");
        let title = i.get("title").unwrap();
        let mainframe = i.get("mainframe developer").unwrap();
        assert_eq!(produced[1].1, vec![(title, Value::Sym(mainframe))]);
    }

    #[test]
    fn round_trips_through_the_writer() {
        let mut i = Interner::new();
        let original = parse_ontology(JOBS, &mut i).unwrap();
        let text = write_ontology(&original, &i);
        let reparsed = parse_ontology(&text, &mut i).unwrap();
        assert_eq!(reparsed.name(), original.name());
        assert_eq!(reparsed.stats(), original.stats());
        // Semantics preserved, not just counts.
        let phd = i.get("phd").unwrap();
        let degree = i.get("degree").unwrap();
        assert_eq!(reparsed.distance(phd, degree), Some(2));
        let e = EventBuilder::new(&mut i).pair("graduation_year", 2000i64).build();
        let mut fired = 0;
        reparsed.apply_mappings(&e, &i, 2003, &mut |_, pairs| {
            fired += 1;
            let exp = i.get("professional experience").unwrap();
            assert_eq!(pairs, vec![(exp, Value::Int(3))]);
        });
        assert_eq!(fired, 1);
    }

    #[test]
    fn expressions_parse_with_precedence() {
        let mut i = Interner::new();
        let text = r#"
map m:
    when a exists
    emit out = a + b * 2 - min(a, 3) / (1 + 1)
end
"#;
        let o = parse_ontology(text, &mut i).unwrap();
        let (_, f) = o.mappings.by_name("m").unwrap();
        let rendered = format!("{}", f.produce[0].expr.display(&i));
        assert_eq!(rendered, "((a + (b * 2)) - (min(a, 3) / (1 + 1)))");
    }

    #[test]
    fn error_reporting_includes_line_numbers() {
        let mut i = Interner::new();
        let cases: &[(&str, usize)] = &[
            ("bogus directive", 1),
            ("\nisa a b", 2),
            ("synonyms a = ", 1),
            ("map f:\n  when x exists\nemit", 3),
            ("map f:\n  when x exists\n  emit y = )\nend", 3),
            ("end", 1),
            ("map f:\n  when x exists", 1),
            ("isa a -> a", 1),
            ("concept \"unterminated", 1),
        ];
        for (text, line) in cases {
            let err = parse_ontology(text, &mut i).unwrap_err();
            assert_eq!(err.line, *line, "wrong line for {text:?}: {err}");
        }
    }

    #[test]
    fn map_blocks_require_when_and_emit() {
        let mut i = Interner::new();
        let no_when = "map f:\n  emit y = 1\nend";
        assert!(parse_ontology(no_when, &mut i).unwrap_err().message.contains("when"));
        let no_emit = "map f:\n  when x exists\nend";
        assert!(parse_ontology(no_emit, &mut i).unwrap_err().message.contains("emit"));
    }

    #[test]
    fn quoted_terms_support_spaces_and_keywords() {
        let mut i = Interner::new();
        let text = "synonyms \"professional experience\" = \"work experience\", \"now\"";
        let o = parse_ontology(text, &mut i).unwrap();
        let pe = i.get("professional experience").unwrap();
        let we = i.get("work experience").unwrap();
        let now = i.get("now").unwrap();
        assert_eq!(o.resolve_synonym(we), pe);
        assert_eq!(o.resolve_synonym(now), pe);
        // And the writer re-quotes them.
        let out = write_ontology(&o, &i);
        assert!(out.contains("\"professional experience\""));
        assert!(out.contains("\"now\""));
    }

    #[test]
    fn negative_constants_and_negation() {
        let mut i = Interner::new();
        let text = "map f:\n  when x >= -5\n  emit y = -x\nend";
        let o = parse_ontology(text, &mut i).unwrap();
        let (_, f) = o.mappings.by_name("f").unwrap();
        assert_eq!(f.pattern[0].guard.unwrap().value, Value::Int(-5));
        let e = EventBuilder::new(&mut i).pair("x", 3i64).build();
        let produced = f.try_apply(&e, &i, 0).unwrap();
        assert_eq!(produced[0].1, Value::Int(-3));
    }

    #[test]
    fn guard_operators_parse() {
        let mut i = Interner::new();
        let text = "map f:\n  when a = 1\n  when b != x\n  when c < 1\n  when d <= 1\n  when e > 1\n  when g >= 1\n  when h contains foo\n  emit y = 1\nend";
        let o = parse_ontology(text, &mut i).unwrap();
        let (_, f) = o.mappings.by_name("f").unwrap();
        let ops: Vec<Operator> = f.pattern.iter().map(|p| p.guard.unwrap().op).collect();
        assert_eq!(
            ops,
            vec![
                Operator::Eq,
                Operator::Ne,
                Operator::Lt,
                Operator::Le,
                Operator::Gt,
                Operator::Ge,
                Operator::Contains
            ]
        );
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let mut i = Interner::new();
        let text = "\n\n# full comment\nisa a -> b # trailing comment\n\n";
        let o = parse_ontology(text, &mut i).unwrap();
        assert_eq!(o.taxonomy.edge_count(), 1);
    }
}
