//! Mapping functions — the third semantic stage's knowledge source.
//!
//! "A mapping function is a many-to-many function that correlates one or
//! more attribute-value pairs to one or more semantically related
//! attribute-value pairs. It is possible to have many mapping functions
//! for each attribute. We assume that mapping functions are specified by
//! domain experts." (§3.1)
//!
//! A [`MappingFunction`] has a *pattern* — attributes that must be present,
//! each optionally guarded by a comparison — and *productions* — new
//! attribute–value pairs computed by [`Expr`]essions over the matched
//! values. The [`MappingRegistry`] indexes functions by their pattern
//! attributes so the candidates for an event are found with hash lookups,
//! "the key aspect of this approach in terms of performance" (§3.2).

use stopss_types::{Event, FxHashMap, Interner, Operator, Predicate, Symbol, Value};

use crate::error::OntologyError;
use crate::expr::{Env, Expr};

/// A guard on one pattern attribute (`op value`, e.g. `>= 4`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Guard {
    /// Comparison operator.
    pub op: Operator,
    /// Right-hand side.
    pub value: Value,
}

impl Guard {
    /// Evaluates the guard against a candidate value.
    pub fn eval(&self, candidate: &Value, attr: Symbol, interner: &Interner) -> bool {
        Predicate::new(attr, self.op, self.value).eval(candidate, interner)
    }
}

/// One required attribute of a pattern, with an optional guard.
#[derive(Clone, Debug, PartialEq)]
pub struct PatternItem {
    /// The attribute that must be present on the event.
    pub attr: Symbol,
    /// Optional constraint on its value (`None` = existence is enough).
    pub guard: Option<Guard>,
}

/// One produced attribute–value pair.
#[derive(Clone, Debug, PartialEq)]
pub struct Production {
    /// Attribute of the produced pair.
    pub attr: Symbol,
    /// Expression computing its value.
    pub expr: Expr,
}

/// Identifier of a mapping function within one registry.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct FnId(pub u32);

/// A domain-expert-specified mapping function.
#[derive(Clone, Debug)]
pub struct MappingFunction {
    /// Name used in provenance and reports.
    pub name: String,
    /// Attributes (with optional guards) that must all be matched.
    pub pattern: Vec<PatternItem>,
    /// Pairs appended to the derived event when the pattern matches.
    pub produce: Vec<Production>,
}

impl MappingFunction {
    /// Builds a function. Patterns should be non-empty; a pattern-less
    /// function would fire on every event, which the registry cannot index
    /// (and the paper's functions are always triggered by attributes).
    pub fn new(
        name: impl Into<String>,
        pattern: Vec<PatternItem>,
        produce: Vec<Production>,
    ) -> Self {
        MappingFunction { name: name.into(), pattern, produce }
    }

    /// Tries to match the pattern and evaluate the productions.
    ///
    /// Binding rule: for each pattern item, the *first* event pair for that
    /// attribute that satisfies the guard is bound. Expressions may also
    /// reference unmatched event attributes (first pair wins). Returns the
    /// produced pairs, or `None` if the pattern does not match or any
    /// production fails to evaluate.
    pub fn try_apply(
        &self,
        event: &Event,
        interner: &Interner,
        now_year: i64,
    ) -> Option<Vec<(Symbol, Value)>> {
        debug_assert!(!self.pattern.is_empty(), "pattern-less mapping functions are not indexable");
        // Small-N: patterns have a handful of items, a vec beats a map.
        let mut bindings: Vec<(Symbol, Value)> = Vec::with_capacity(self.pattern.len());
        for item in &self.pattern {
            let bound = event.values_for(item.attr).find(|v| match &item.guard {
                Some(g) => g.eval(v, item.attr, interner),
                None => true,
            })?;
            bindings.push((item.attr, *bound));
        }
        let lookup = |sym: Symbol| -> Option<Value> {
            bindings
                .iter()
                .find(|(a, _)| *a == sym)
                .map(|(_, v)| *v)
                .or_else(|| event.get(sym).copied())
        };
        let env = Env { now_year, lookup: &lookup };
        let mut out = Vec::with_capacity(self.produce.len());
        for prod in &self.produce {
            out.push((prod.attr, prod.expr.eval(&env)?));
        }
        Some(out)
    }

    /// The attributes that trigger this function (its pattern attributes).
    pub fn trigger_attrs(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.pattern.iter().map(|p| p.attr)
    }
}

/// Receives each fired mapping function together with its produced pairs.
pub type MappingSink<'a> = dyn FnMut(FnId, &MappingFunction, Vec<(Symbol, Value)>) + 'a;

/// A registry of mapping functions, indexed by pattern attribute.
#[derive(Default, Debug, Clone)]
pub struct MappingRegistry {
    fns: Vec<MappingFunction>,
    by_name: FxHashMap<String, FnId>,
    /// attribute → functions having it in their pattern.
    by_trigger: FxHashMap<Symbol, Vec<FnId>>,
}

impl MappingRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a function; names must be unique within one registry.
    pub fn register(&mut self, func: MappingFunction) -> Result<FnId, OntologyError> {
        if self.by_name.contains_key(&func.name) {
            return Err(OntologyError::DuplicateMapping(func.name.clone()));
        }
        let id = FnId(u32::try_from(self.fns.len()).expect("too many mapping functions"));
        for attr in func.trigger_attrs() {
            let triggers = self.by_trigger.entry(attr).or_default();
            if !triggers.contains(&id) {
                triggers.push(id);
            }
        }
        self.by_name.insert(func.name.clone(), id);
        self.fns.push(func);
        Ok(id)
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.fns.len()
    }

    /// True if no functions are registered.
    pub fn is_empty(&self) -> bool {
        self.fns.is_empty()
    }

    /// Looks a function up by id.
    pub fn get(&self, id: FnId) -> Option<&MappingFunction> {
        self.fns.get(id.0 as usize)
    }

    /// Looks a function up by name.
    pub fn by_name(&self, name: &str) -> Option<(FnId, &MappingFunction)> {
        let id = *self.by_name.get(name)?;
        Some((id, &self.fns[id.0 as usize]))
    }

    /// Iterates all functions.
    pub fn iter(&self) -> impl Iterator<Item = (FnId, &MappingFunction)> {
        self.fns.iter().enumerate().map(|(k, f)| (FnId(k as u32), f))
    }

    /// Applies every candidate function to `event`, calling `sink` with
    /// the function and its produced pairs. Candidates are discovered via
    /// the trigger index — only functions whose pattern mentions an
    /// attribute present on the event are attempted — and each function is
    /// attempted at most once per call.
    pub fn apply_all(
        &self,
        event: &Event,
        interner: &Interner,
        now_year: i64,
        sink: &mut MappingSink<'_>,
    ) {
        // Small scratch of attempted ids; events trigger few functions.
        let mut attempted: Vec<FnId> = Vec::new();
        for (attr, _) in event.pairs() {
            let Some(candidates) = self.by_trigger.get(attr) else {
                continue;
            };
            for &id in candidates {
                if attempted.contains(&id) {
                    continue;
                }
                attempted.push(id);
                let func = &self.fns[id.0 as usize];
                if let Some(produced) = func.try_apply(event, interner, now_year) {
                    sink(id, func, produced);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stopss_types::EventBuilder;

    /// The paper's §3.1 mapping example:
    /// `professional experience = present date − graduation year`.
    fn experience_fn(i: &mut Interner) -> MappingFunction {
        let grad = i.intern("graduation_year");
        let exp = i.intern("professional_experience");
        MappingFunction::new(
            "experience_from_graduation",
            vec![PatternItem { attr: grad, guard: None }],
            vec![Production { attr: exp, expr: Expr::sub(Expr::Now, Expr::Attr(grad)) }],
        )
    }

    #[test]
    fn paper_example_fires_and_computes() {
        let mut i = Interner::new();
        let f = experience_fn(&mut i);
        let e = EventBuilder::new(&mut i)
            .term("school", "toronto")
            .pair("graduation_year", 1993i64)
            .build();
        let produced = f.try_apply(&e, &i, 2003).unwrap();
        let exp = i.get("professional_experience").unwrap();
        assert_eq!(produced, vec![(exp, Value::Int(10))]);
    }

    #[test]
    fn pattern_without_attribute_does_not_fire() {
        let mut i = Interner::new();
        let f = experience_fn(&mut i);
        let e = EventBuilder::new(&mut i).term("school", "toronto").build();
        assert!(f.try_apply(&e, &i, 2003).is_none());
    }

    #[test]
    fn guards_constrain_binding() {
        let mut i = Interner::new();
        let year = i.intern("year");
        let era = i.intern("era");
        let mainframe = i.intern("mainframe_era");
        let f = MappingFunction::new(
            "era_from_year",
            vec![
                PatternItem {
                    attr: year,
                    guard: Some(Guard { op: Operator::Ge, value: Value::Int(1960) }),
                },
                PatternItem {
                    attr: year,
                    guard: Some(Guard { op: Operator::Le, value: Value::Int(1980) }),
                },
            ],
            vec![Production { attr: era, expr: Expr::Const(Value::Sym(mainframe)) }],
        );
        let hit = EventBuilder::new(&mut i).pair("year", 1970i64).build();
        let miss = EventBuilder::new(&mut i).pair("year", 1995i64).build();
        assert_eq!(f.try_apply(&hit, &i, 0).unwrap(), vec![(era, Value::Sym(mainframe))]);
        assert!(f.try_apply(&miss, &i, 0).is_none());
    }

    #[test]
    fn guard_binds_first_satisfying_pair() {
        let mut i = Interner::new();
        let x = i.intern("x");
        let y = i.intern("y");
        let f = MappingFunction::new(
            "pick",
            vec![PatternItem {
                attr: x,
                guard: Some(Guard { op: Operator::Gt, value: Value::Int(5) }),
            }],
            vec![Production { attr: y, expr: Expr::Attr(x) }],
        );
        let e = Event::new().with(x, Value::Int(1)).with(x, Value::Int(7)).with(x, Value::Int(9));
        assert_eq!(f.try_apply(&e, &i, 0).unwrap(), vec![(y, Value::Int(7))]);
    }

    #[test]
    fn failed_production_suppresses_the_function() {
        let mut i = Interner::new();
        let x = i.intern("x");
        let out = i.intern("out");
        let f = MappingFunction::new(
            "div",
            vec![PatternItem { attr: x, guard: None }],
            vec![Production {
                attr: out,
                expr: Expr::div(Expr::Const(Value::Int(1)), Expr::Attr(x)),
            }],
        );
        let zero = Event::new().with(x, Value::Int(0));
        assert!(f.try_apply(&zero, &i, 0).is_none());
        let two = Event::new().with(x, Value::Int(2));
        assert!(f.try_apply(&two, &i, 0).is_some());
    }

    #[test]
    fn registry_indexes_by_trigger() {
        let mut i = Interner::new();
        let mut reg = MappingRegistry::new();
        let f = experience_fn(&mut i);
        let id = reg.register(f).unwrap();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.by_name("experience_from_graduation").unwrap().0, id);
        assert!(reg.get(id).is_some());

        let trigger_event = EventBuilder::new(&mut i).pair("graduation_year", 2000i64).build();
        let other_event = EventBuilder::new(&mut i).pair("salary", 100i64).build();
        let mut fired = Vec::new();
        reg.apply_all(&trigger_event, &i, 2003, &mut |fid, _, pairs| fired.push((fid, pairs)));
        assert_eq!(fired.len(), 1);
        fired.clear();
        reg.apply_all(&other_event, &i, 2003, &mut |fid, _, pairs| fired.push((fid, pairs)));
        assert!(fired.is_empty(), "no candidates without trigger attribute");
    }

    #[test]
    fn registry_attempts_multi_trigger_function_once() {
        let mut i = Interner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        let out = i.intern("out");
        let mut reg = MappingRegistry::new();
        reg.register(MappingFunction::new(
            "sum",
            vec![PatternItem { attr: a, guard: None }, PatternItem { attr: b, guard: None }],
            vec![Production { attr: out, expr: Expr::add(Expr::Attr(a), Expr::Attr(b)) }],
        ))
        .unwrap();
        let e = Event::new().with(a, Value::Int(1)).with(b, Value::Int(2));
        let mut count = 0;
        reg.apply_all(&e, &i, 0, &mut |_, _, pairs| {
            count += 1;
            assert_eq!(pairs, vec![(out, Value::Int(3))]);
        });
        assert_eq!(count, 1, "function must fire once despite two trigger attrs");
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut i = Interner::new();
        let mut reg = MappingRegistry::new();
        reg.register(experience_fn(&mut i)).unwrap();
        let err = reg.register(experience_fn(&mut i)).unwrap_err();
        assert!(matches!(err, OntologyError::DuplicateMapping(_)));
    }

    #[test]
    fn many_functions_per_attribute_all_fire() {
        let mut i = Interner::new();
        let x = i.intern("x");
        let mut reg = MappingRegistry::new();
        for k in 0..3 {
            let out = i.intern(&format!("out{k}"));
            reg.register(MappingFunction::new(
                format!("f{k}"),
                vec![PatternItem { attr: x, guard: None }],
                vec![Production {
                    attr: out,
                    expr: Expr::mul(Expr::Attr(x), Expr::Const(Value::Int(k))),
                }],
            ))
            .unwrap();
        }
        let e = Event::new().with(x, Value::Int(2));
        let mut fired = Vec::new();
        reg.apply_all(&e, &i, 0, &mut |id, _, _| fired.push(id));
        fired.sort_unstable();
        assert_eq!(fired, vec![FnId(0), FnId(1), FnId(2)]);
    }
}
