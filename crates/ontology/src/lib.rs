//! # stopss-ontology
//!
//! The ontology substrate of the S-ToPSS reproduction: the three knowledge
//! sources the paper's semantic stages consume (§3.1), plus multi-domain
//! support (§3.2) and a declarative text format.
//!
//! * [`SynonymTable`] — alias → root term resolution (stage 1);
//! * [`Taxonomy`] — specialization/generalization concept DAG with cached
//!   ancestor queries (stage 2);
//! * [`MappingFunction`] / [`MappingRegistry`] — many-to-many
//!   attribute–value correlations with a small expression language
//!   (stage 3);
//! * [`Ontology`] — one domain's bundle; [`DomainRegistry`] — several
//!   domains plus inter-domain bridge functions, behind the common
//!   [`SemanticSource`] interface;
//! * [`dsl`] — the `.sto` text format (parser + writer);
//! * [`damloil`] — the paper's stated future work: translating DAML+OIL
//!   (RDF/XML) ontologies into the efficient internal representation.

#![warn(missing_docs)]

pub mod damloil;
pub mod domain;
pub mod dsl;
pub mod error;
pub mod expr;
pub mod mapping;
pub mod synonyms;
pub mod taxonomy;

pub use damloil::{import_damloil, ImportReport};
pub use domain::{DomainId, DomainRegistry, Ontology, SemanticSource};
pub use dsl::{parse_ontology, write_ontology};
pub use error::{OntologyError, ParseError};
pub use expr::{Env, Expr};
pub use mapping::{FnId, Guard, MappingFunction, MappingRegistry, PatternItem, Production};
pub use synonyms::SynonymTable;
pub use taxonomy::{ConceptId, Taxonomy};
