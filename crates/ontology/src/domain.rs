//! Ontology bundles and the multi-domain registry.
//!
//! An [`Ontology`] packages the three knowledge sources of one domain:
//! synonyms, a concept hierarchy, and mapping functions. The paper
//! emphasizes that "the current trend is to have many domain-specific
//! ontologies … instead of a single, large and global ontology" and that a
//! single S-ToPSS instance can serve several domains at once, bridged by
//! *inter-domain* mapping functions (§3.2). [`DomainRegistry`] implements
//! exactly that: it exposes the same [`SemanticSource`] interface as a
//! single ontology, fanning queries out across domains and the bridge
//! functions.

use stopss_types::{Event, FxHashMap, Interner, Symbol, Value};

use crate::error::OntologyError;
use crate::mapping::{FnId, MappingFunction, MappingRegistry};
use crate::synonyms::SynonymTable;
use crate::taxonomy::Taxonomy;

/// Receives each fired mapping function's name and produced pairs.
pub type NamedMappingSink<'a> = dyn FnMut(&str, Vec<(Symbol, Value)>) + 'a;

/// What the semantic stages need from an ontology. Implemented by
/// [`Ontology`] (single domain) and [`DomainRegistry`] (multi-domain).
pub trait SemanticSource: Send + Sync {
    /// Resolves a term through the synonym table(s).
    fn resolve_synonym(&self, term: Symbol) -> Symbol;

    /// Visits `(ancestor, min_distance)` for every generalization of
    /// `term`.
    fn for_each_ancestor(&self, term: Symbol, f: &mut dyn FnMut(Symbol, u32));

    /// All `(descendant, min_distance)` specializations of `term`.
    fn descendants(&self, term: Symbol) -> Vec<(Symbol, u32)>;

    /// True iff `special` is a strict specialization of `general`.
    fn is_a(&self, special: Symbol, general: Symbol) -> bool;

    /// Minimum generalization distance, if related.
    fn distance(&self, special: Symbol, general: Symbol) -> Option<u32>;

    /// Applies every candidate mapping function to `event` (see
    /// [`MappingRegistry::apply_all`](crate::mapping::MappingRegistry::apply_all)).
    /// The `name` passed to the sink is the function's registered name
    /// (used for provenance).
    fn apply_mappings(
        &self,
        event: &Event,
        interner: &Interner,
        now_year: i64,
        sink: &mut NamedMappingSink<'_>,
    );

    /// Downcast hook for live ontology evolution: sources that are a
    /// plain single-domain [`Ontology`] return themselves, so a caller
    /// holding only `dyn SemanticSource` can clone the running ontology,
    /// apply a delta, and swap the fork in (the wire protocol's
    /// `SetOntology` path). Composite sources keep the default `None` —
    /// a delta against them has no single table to land in.
    fn as_ontology(&self) -> Option<&Ontology> {
        None
    }
}

/// A single domain's knowledge: synonyms + taxonomy + mapping functions.
#[derive(Debug, Default, Clone)]
pub struct Ontology {
    name: String,
    /// Synonym table over attributes and values.
    pub synonyms: SynonymTable,
    /// Concept hierarchy over attributes and values.
    pub taxonomy: Taxonomy,
    /// Mapping functions of this domain.
    pub mappings: MappingRegistry,
}

impl Ontology {
    /// Creates an empty ontology named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Ontology { name: name.into(), ..Default::default() }
    }

    /// The domain name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Size summary `(synonym aliases, concepts, is-a edges, mapping fns)`
    /// for reports.
    pub fn stats(&self) -> (usize, usize, usize, usize) {
        (
            self.synonyms.alias_count(),
            self.taxonomy.len(),
            self.taxonomy.edge_count(),
            self.mappings.len(),
        )
    }
}

impl SemanticSource for Ontology {
    fn resolve_synonym(&self, term: Symbol) -> Symbol {
        self.synonyms.resolve(term)
    }

    fn as_ontology(&self) -> Option<&Ontology> {
        Some(self)
    }

    fn for_each_ancestor(&self, term: Symbol, f: &mut dyn FnMut(Symbol, u32)) {
        self.taxonomy.for_each_ancestor(term, f);
    }

    fn descendants(&self, term: Symbol) -> Vec<(Symbol, u32)> {
        self.taxonomy.descendants(term)
    }

    fn is_a(&self, special: Symbol, general: Symbol) -> bool {
        self.taxonomy.is_a(special, general)
    }

    fn distance(&self, special: Symbol, general: Symbol) -> Option<u32> {
        self.taxonomy.distance(special, general)
    }

    fn apply_mappings(
        &self,
        event: &Event,
        interner: &Interner,
        now_year: i64,
        sink: &mut NamedMappingSink<'_>,
    ) {
        self.mappings
            .apply_all(event, interner, now_year, &mut |_, func, pairs| sink(&func.name, pairs));
    }
}

/// Identifier of a domain within a registry.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct DomainId(pub u32);

/// Several domain ontologies plus inter-domain bridge functions, exposed
/// as one combined [`SemanticSource`].
///
/// Synonym resolution applies each domain's table in registration order
/// until one rewrites the term (domains are expected to govern disjoint
/// vocabularies; the order only matters for terms claimed by several
/// domains). Hierarchy queries take the union of all taxonomies; mapping
/// application runs every domain's functions plus the bridges.
#[derive(Debug, Default)]
pub struct DomainRegistry {
    domains: Vec<Ontology>,
    by_name: FxHashMap<String, DomainId>,
    /// Inter-domain mapping functions ("it is possible to provide
    /// inter-domain mapping by simply adding additional functions").
    pub bridges: MappingRegistry,
}

impl DomainRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a domain; names must be unique.
    pub fn add_domain(&mut self, ontology: Ontology) -> Result<DomainId, OntologyError> {
        if self.by_name.contains_key(ontology.name()) {
            return Err(OntologyError::DuplicateDomain(ontology.name().to_owned()));
        }
        let id = DomainId(u32::try_from(self.domains.len()).expect("too many domains"));
        self.by_name.insert(ontology.name().to_owned(), id);
        self.domains.push(ontology);
        Ok(id)
    }

    /// Registers an inter-domain bridge function.
    pub fn add_bridge(&mut self, func: MappingFunction) -> Result<FnId, OntologyError> {
        self.bridges.register(func)
    }

    /// Number of domains.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// True if no domains are registered.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// Domain by id.
    pub fn get(&self, id: DomainId) -> Option<&Ontology> {
        self.domains.get(id.0 as usize)
    }

    /// Mutable domain by id (setup phase only).
    pub fn get_mut(&mut self, id: DomainId) -> Option<&mut Ontology> {
        self.domains.get_mut(id.0 as usize)
    }

    /// Domain by name.
    pub fn by_name(&self, name: &str) -> Option<(DomainId, &Ontology)> {
        let id = *self.by_name.get(name)?;
        Some((id, &self.domains[id.0 as usize]))
    }

    /// Iterates domains in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (DomainId, &Ontology)> {
        self.domains.iter().enumerate().map(|(k, o)| (DomainId(k as u32), o))
    }
}

impl SemanticSource for DomainRegistry {
    fn resolve_synonym(&self, term: Symbol) -> Symbol {
        for domain in &self.domains {
            let resolved = domain.synonyms.resolve(term);
            if resolved != term {
                return resolved;
            }
        }
        term
    }

    fn for_each_ancestor(&self, term: Symbol, f: &mut dyn FnMut(Symbol, u32)) {
        for domain in &self.domains {
            domain.taxonomy.for_each_ancestor(term, f);
        }
    }

    fn descendants(&self, term: Symbol) -> Vec<(Symbol, u32)> {
        let mut out = Vec::new();
        for domain in &self.domains {
            out.extend(domain.taxonomy.descendants(term));
        }
        out
    }

    fn is_a(&self, special: Symbol, general: Symbol) -> bool {
        self.domains.iter().any(|d| d.taxonomy.is_a(special, general))
    }

    fn distance(&self, special: Symbol, general: Symbol) -> Option<u32> {
        self.domains.iter().filter_map(|d| d.taxonomy.distance(special, general)).min()
    }

    fn apply_mappings(
        &self,
        event: &Event,
        interner: &Interner,
        now_year: i64,
        sink: &mut NamedMappingSink<'_>,
    ) {
        for domain in &self.domains {
            domain.apply_mappings(event, interner, now_year, sink);
        }
        self.bridges
            .apply_all(event, interner, now_year, &mut |_, func, pairs| sink(&func.name, pairs));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::mapping::{PatternItem, Production};
    use stopss_types::EventBuilder;

    fn jobs_domain(i: &mut Interner) -> Ontology {
        let mut o = Ontology::new("jobs");
        let university = i.intern("university");
        let school = i.intern("school");
        o.synonyms.add_synonym(university, school, i).unwrap();
        let degree = i.intern("degree");
        let phd = i.intern("phd");
        o.taxonomy.add_isa(phd, degree, i).unwrap();
        o
    }

    fn commerce_domain(i: &mut Interner) -> Ontology {
        let mut o = Ontology::new("commerce");
        let vehicle = i.intern("vehicle");
        let car = i.intern("car");
        o.taxonomy.add_isa(car, vehicle, i).unwrap();
        o
    }

    #[test]
    fn single_ontology_implements_semantic_source() {
        let mut i = Interner::new();
        let o = jobs_domain(&mut i);
        let school = i.get("school").unwrap();
        let university = i.get("university").unwrap();
        let phd = i.get("phd").unwrap();
        let degree = i.get("degree").unwrap();
        assert_eq!(o.resolve_synonym(school), university);
        assert!(o.is_a(phd, degree));
        assert_eq!(o.distance(phd, degree), Some(1));
        assert_eq!(o.stats(), (1, 2, 1, 0));
    }

    #[test]
    fn registry_unions_domains() {
        let mut i = Interner::new();
        let mut reg = DomainRegistry::new();
        reg.add_domain(jobs_domain(&mut i)).unwrap();
        reg.add_domain(commerce_domain(&mut i)).unwrap();
        assert_eq!(reg.len(), 2);

        let school = i.get("school").unwrap();
        let university = i.get("university").unwrap();
        let car = i.get("car").unwrap();
        let vehicle = i.get("vehicle").unwrap();
        let phd = i.get("phd").unwrap();
        let degree = i.get("degree").unwrap();
        assert_eq!(reg.resolve_synonym(school), university);
        assert!(reg.is_a(car, vehicle), "second domain's taxonomy is visible");
        assert!(reg.is_a(phd, degree), "first domain's taxonomy is visible");
        assert!(!reg.is_a(car, degree), "no cross-domain edges appear from nowhere");
    }

    #[test]
    fn duplicate_domain_names_rejected() {
        let mut i = Interner::new();
        let mut reg = DomainRegistry::new();
        reg.add_domain(jobs_domain(&mut i)).unwrap();
        let err = reg.add_domain(Ontology::new("jobs")).unwrap_err();
        assert!(matches!(err, OntologyError::DuplicateDomain(_)));
    }

    #[test]
    fn bridges_fire_alongside_domain_mappings() {
        let mut i = Interner::new();
        let mut reg = DomainRegistry::new();
        let mut jobs = jobs_domain(&mut i);
        // Domain-local function.
        let grad = i.intern("graduation_year");
        let exp = i.intern("professional_experience");
        jobs.mappings
            .register(MappingFunction::new(
                "experience",
                vec![PatternItem { attr: grad, guard: None }],
                vec![Production { attr: exp, expr: Expr::sub(Expr::Now, Expr::Attr(grad)) }],
            ))
            .unwrap();
        reg.add_domain(jobs).unwrap();
        reg.add_domain(commerce_domain(&mut i)).unwrap();
        // Inter-domain bridge: salary (jobs) → budget (commerce).
        let salary = i.intern("salary");
        let budget = i.intern("budget");
        reg.add_bridge(MappingFunction::new(
            "salary_to_budget",
            vec![PatternItem { attr: salary, guard: None }],
            vec![Production { attr: budget, expr: Expr::Attr(salary) }],
        ))
        .unwrap();

        let e = EventBuilder::new(&mut i)
            .pair("graduation_year", 1998i64)
            .pair("salary", 90_000i64)
            .build();
        let mut fired: Vec<String> = Vec::new();
        reg.apply_mappings(&e, &i, 2003, &mut |name, _| fired.push(name.to_owned()));
        fired.sort();
        assert_eq!(fired, vec!["experience".to_owned(), "salary_to_budget".to_owned()]);
    }

    #[test]
    fn lookup_by_name_and_iteration() {
        let mut i = Interner::new();
        let mut reg = DomainRegistry::new();
        let jobs_id = reg.add_domain(jobs_domain(&mut i)).unwrap();
        let (found_id, found) = reg.by_name("jobs").unwrap();
        assert_eq!(found_id, jobs_id);
        assert_eq!(found.name(), "jobs");
        assert!(reg.by_name("nope").is_none());
        assert_eq!(reg.iter().count(), 1);
        assert!(reg.get(jobs_id).is_some());
        assert!(reg.get_mut(jobs_id).is_some());
    }

    #[test]
    fn registry_distance_takes_minimum_across_domains() {
        let mut i = Interner::new();
        let mut reg = DomainRegistry::new();
        // Same concepts present in two domains with different path lengths.
        let (a, b, mid) = (i.intern("a"), i.intern("b"), i.intern("mid"));
        let mut d1 = Ontology::new("d1");
        d1.taxonomy.add_isa(a, mid, &i).unwrap();
        d1.taxonomy.add_isa(mid, b, &i).unwrap();
        let mut d2 = Ontology::new("d2");
        d2.taxonomy.add_isa(a, b, &i).unwrap();
        reg.add_domain(d1).unwrap();
        reg.add_domain(d2).unwrap();
        assert_eq!(reg.distance(a, b), Some(1));
    }
}
