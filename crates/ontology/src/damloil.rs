//! DAML+OIL import — the paper's stated future work.
//!
//! "Our future work looks at automating translation of ontologies
//! expressed in DAML+OIL into a more efficient representation suitable
//! for S-ToPSS" (§2). This module implements that translation for the
//! DAML+OIL constructs S-ToPSS can use:
//!
//! | DAML+OIL | S-ToPSS |
//! |---|---|
//! | `daml:Class rdf:ID` | concept |
//! | `rdfs:subClassOf rdf:resource="#X"` | is-a edge |
//! | `daml:sameClassAs` / `daml:equivalentTo` | synonym |
//! | `rdfs:label` | synonym (alternative spelling) |
//!
//! DAML+OIL's carrier syntax is RDF/XML. A full RDF stack is far outside
//! this system's needs (and the available crates), so the importer
//! contains a small, total XML-subset reader: elements, attributes,
//! self-closing tags, comments, and entity-free text. Anything outside
//! the subset is reported with a line number, never panicked on.
//! Constructs the table above does not list (restrictions, properties,
//! cardinalities) are skipped — semantic pub/sub only consumes the
//! taxonomy/synonym fragment, exactly as the paper describes.

use stopss_types::Interner;

use crate::domain::Ontology;
use crate::error::ParseError;

// ---------------------------------------------------------------------------
// Minimal XML reader
// ---------------------------------------------------------------------------

/// One XML event in the subset grammar.
#[derive(Debug, Clone, PartialEq)]
enum XmlEvent {
    /// `<name attr="v" …>`; `self_closing` for `<… />`.
    Open { name: String, attrs: Vec<(String, String)>, self_closing: bool },
    /// `</name>`.
    Close { name: String },
    /// Text between tags (whitespace-trimmed, empty chunks skipped).
    Text(String),
}

struct XmlReader<'a> {
    input: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> XmlReader<'a> {
    fn new(input: &'a str) -> Self {
        XmlReader { input, pos: 0, line: 1 }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(self.line, message)
    }

    fn bump(&mut self, n: usize) {
        let consumed = &self.input[self.pos..self.pos + n];
        self.line += consumed.bytes().filter(|b| *b == b'\n').count();
        self.pos += n;
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    /// Returns the next event, or `None` at end of input.
    fn next_event(&mut self) -> Result<Option<XmlEvent>, ParseError> {
        loop {
            if self.pos >= self.input.len() {
                return Ok(None);
            }
            let rest = self.rest();
            if !rest.starts_with('<') {
                // Text run, possibly trailing at end of input.
                let text_end = rest.find('<').unwrap_or(rest.len());
                let text = rest[..text_end].trim().to_owned();
                self.bump(text_end);
                if !text.is_empty() {
                    return Ok(Some(XmlEvent::Text(text)));
                }
                continue;
            }
            if rest.starts_with("<?") {
                let end = rest.find("?>").ok_or_else(|| self.error("unterminated <? ?>"))?;
                self.bump(end + 2);
                continue;
            }
            if rest.starts_with("<!--") {
                let end = rest.find("-->").ok_or_else(|| self.error("unterminated comment"))?;
                self.bump(end + 3);
                continue;
            }
            if rest.starts_with("<!") {
                let end = rest.find('>').ok_or_else(|| self.error("unterminated <! >"))?;
                self.bump(end + 1);
                continue;
            }
            if let Some(stripped) = rest.strip_prefix("</") {
                let end = rest.find('>').ok_or_else(|| self.error("unterminated close tag"))?;
                let name = stripped[..end - 2].trim().to_owned();
                self.bump(end + 1);
                return Ok(Some(XmlEvent::Close { name }));
            }
            // Open tag.
            let end = rest.find('>').ok_or_else(|| self.error("unterminated tag"))?;
            let inner = &rest[1..end];
            let (inner, self_closing) = match inner.strip_suffix('/') {
                Some(trimmed) => (trimmed, true),
                None => (inner, false),
            };
            let event = self.parse_tag(inner, self_closing)?;
            self.bump(end + 1);
            return Ok(Some(event));
        }
    }

    fn parse_tag(&self, inner: &str, self_closing: bool) -> Result<XmlEvent, ParseError> {
        let inner = inner.trim();
        let name_end = inner.find(char::is_whitespace).unwrap_or(inner.len());
        let name = inner[..name_end].to_owned();
        if name.is_empty() {
            return Err(self.error("empty tag name"));
        }
        let mut attrs = Vec::new();
        let mut rest = inner[name_end..].trim_start();
        while !rest.is_empty() {
            let eq = rest
                .find('=')
                .ok_or_else(|| self.error(format!("attribute without '=' in <{name}>")))?;
            let key = rest[..eq].trim().to_owned();
            let after = rest[eq + 1..].trim_start();
            let quote = after
                .chars()
                .next()
                .filter(|c| *c == '"' || *c == '\'')
                .ok_or_else(|| self.error(format!("unquoted attribute value in <{name}>")))?;
            let value_rest = &after[1..];
            let close = value_rest
                .find(quote)
                .ok_or_else(|| self.error(format!("unterminated attribute value in <{name}>")))?;
            attrs.push((key, unescape(&value_rest[..close])));
            rest = value_rest[close + 1..].trim_start();
        }
        Ok(XmlEvent::Open { name, attrs, self_closing })
    }
}

fn unescape(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

// ---------------------------------------------------------------------------
// DAML+OIL translation
// ---------------------------------------------------------------------------

fn local_name(tag: &str) -> &str {
    tag.rsplit(':').next().unwrap_or(tag)
}

fn attr<'a>(attrs: &'a [(String, String)], wanted: &str) -> Option<&'a str> {
    attrs.iter().find(|(k, _)| local_name(k) == wanted || k == wanted).map(|(_, v)| v.as_str())
}

/// Strips the fragment marker of `rdf:resource="#concept"` / about refs.
fn resource_name(value: &str) -> &str {
    value.strip_prefix('#').unwrap_or_else(|| value.rsplit('#').next().unwrap_or(value))
}

/// Statistics of one import.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ImportReport {
    /// Concepts declared (`daml:Class`).
    pub classes: usize,
    /// Is-a edges (`rdfs:subClassOf`).
    pub subclass_edges: usize,
    /// Synonyms (`daml:sameClassAs` / `equivalentTo` / `rdfs:label`).
    pub synonyms: usize,
    /// Elements skipped because S-ToPSS has no use for them.
    pub skipped_elements: usize,
}

/// Translates a DAML+OIL (RDF/XML) document into an [`Ontology`].
///
/// The ontology's name is taken from the `rdf:RDF` element's
/// `xml:base` (last path segment) when present, else `"daml-import"`.
pub fn import_damloil(
    text: &str,
    interner: &mut Interner,
) -> Result<(Ontology, ImportReport), ParseError> {
    let mut reader = XmlReader::new(text);
    let mut ontology = Ontology::new("daml-import");
    let mut report = ImportReport::default();
    // The class whose element we are inside (classes do not nest in the
    // supported subset).
    let mut current_class: Option<stopss_types::Symbol> = None;
    // Set when entering an rdfs:label element; the following text event is
    // the label.
    let mut expecting_label = false;

    while let Some(event) = reader.next_event()? {
        match event {
            XmlEvent::Open { name, attrs, self_closing } => {
                let tag = local_name(&name).to_ascii_lowercase();
                match tag.as_str() {
                    "rdf" => {
                        if let Some(base) = attr(&attrs, "base") {
                            let base_name =
                                base.rsplit('/').next().unwrap_or(base).trim_end_matches(".daml");
                            if !base_name.is_empty() {
                                ontology = rename(ontology, base_name);
                            }
                        }
                    }
                    "class" => {
                        let id = attr(&attrs, "ID").or_else(|| attr(&attrs, "about")).ok_or_else(
                            || ParseError::new(reader.line, "daml:Class without rdf:ID/rdf:about"),
                        )?;
                        let sym = interner.intern(resource_name(id));
                        ontology.taxonomy.add_concept(sym);
                        report.classes += 1;
                        if !self_closing {
                            current_class = Some(sym);
                        }
                    }
                    "subclassof" => {
                        let class = current_class.ok_or_else(|| {
                            ParseError::new(reader.line, "rdfs:subClassOf outside daml:Class")
                        })?;
                        if let Some(resource) = attr(&attrs, "resource") {
                            let parent = interner.intern(resource_name(resource));
                            ontology
                                .taxonomy
                                .add_isa(class, parent, interner)
                                .map_err(|e| ParseError::new(reader.line, e.to_string()))?;
                            report.subclass_edges += 1;
                        }
                    }
                    "sameclassas" | "equivalentto" => {
                        let class = current_class.ok_or_else(|| {
                            ParseError::new(reader.line, format!("{name} outside daml:Class"))
                        })?;
                        if let Some(resource) = attr(&attrs, "resource") {
                            let alias = interner.intern(resource_name(resource));
                            ontology
                                .synonyms
                                .add_synonym(class, alias, interner)
                                .map_err(|e| ParseError::new(reader.line, e.to_string()))?;
                            report.synonyms += 1;
                        }
                    }
                    "label" => {
                        if current_class.is_some() && !self_closing {
                            expecting_label = true;
                        }
                    }
                    _ => {
                        report.skipped_elements += 1;
                    }
                }
            }
            XmlEvent::Text(text) => {
                if expecting_label {
                    if let Some(class) = current_class {
                        let label = interner.intern(&text);
                        if label != class {
                            ontology
                                .synonyms
                                .add_synonym(class, label, interner)
                                .map_err(|e| ParseError::new(reader.line, e.to_string()))?;
                            report.synonyms += 1;
                        }
                    }
                    expecting_label = false;
                }
            }
            XmlEvent::Close { name } => match local_name(&name).to_ascii_lowercase().as_str() {
                "class" => current_class = None,
                "label" => expecting_label = false,
                _ => {}
            },
        }
    }
    Ok((ontology, report))
}

fn rename(o: Ontology, name: &str) -> Ontology {
    let mut renamed = Ontology::new(name);
    renamed.synonyms = o.synonyms;
    renamed.taxonomy = o.taxonomy;
    renamed.mappings = o.mappings;
    renamed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::SemanticSource;

    const SAMPLE: &str = r##"<?xml version="1.0"?>
<rdf:RDF xml:base="http://example.org/ontologies/jobs.daml"
         xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:daml="http://www.daml.org/2001/03/daml+oil#">
  <!-- the degree taxonomy, as a DAML+OIL fragment -->
  <daml:Class rdf:ID="degree"/>
  <daml:Class rdf:ID="graduate_degree">
    <rdfs:subClassOf rdf:resource="#degree"/>
  </daml:Class>
  <daml:Class rdf:ID="phd">
    <rdfs:subClassOf rdf:resource="#graduate_degree"/>
    <rdfs:label>doctorate</rdfs:label>
  </daml:Class>
  <daml:Class rdf:ID="university">
    <daml:sameClassAs rdf:resource="#school"/>
    <daml:equivalentTo rdf:resource="#college"/>
  </daml:Class>
  <daml:ObjectProperty rdf:ID="ignored_property">
    <rdfs:domain rdf:resource="#degree"/>
  </daml:ObjectProperty>
</rdf:RDF>
"##;

    #[test]
    fn imports_classes_edges_and_synonyms() {
        let mut interner = Interner::new();
        let (ontology, report) = import_damloil(SAMPLE, &mut interner).unwrap();
        assert_eq!(ontology.name(), "jobs");
        assert_eq!(report.classes, 4);
        assert_eq!(report.subclass_edges, 2);
        assert_eq!(report.synonyms, 3, "two sameClassAs/equivalentTo + one label");
        assert!(report.skipped_elements > 0);

        let phd = interner.get("phd").unwrap();
        let degree = interner.get("degree").unwrap();
        assert_eq!(ontology.distance(phd, degree), Some(2));
        let school = interner.get("school").unwrap();
        let university = interner.get("university").unwrap();
        assert_eq!(ontology.resolve_synonym(school), university);
        let doctorate = interner.get("doctorate").unwrap();
        assert_eq!(ontology.resolve_synonym(doctorate), phd);
    }

    #[test]
    fn imported_ontology_round_trips_through_sto() {
        let mut interner = Interner::new();
        let (ontology, _) = import_damloil(SAMPLE, &mut interner).unwrap();
        let sto = crate::dsl::write_ontology(&ontology, &interner);
        let reparsed = crate::dsl::parse_ontology(&sto, &mut interner).unwrap();
        assert_eq!(reparsed.stats(), ontology.stats());
        let phd = interner.get("phd").unwrap();
        let degree = interner.get("degree").unwrap();
        assert_eq!(reparsed.distance(phd, degree), Some(2));
    }

    #[test]
    fn cycles_in_daml_are_rejected_with_line_numbers() {
        let text = r##"<rdf:RDF>
<daml:Class rdf:ID="a"><rdfs:subClassOf rdf:resource="#b"/></daml:Class>
<daml:Class rdf:ID="b"><rdfs:subClassOf rdf:resource="#a"/></daml:Class>
</rdf:RDF>"##;
        let mut interner = Interner::new();
        let err = import_damloil(text, &mut interner).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("cycle"), "{err}");
    }

    #[test]
    fn malformed_xml_is_an_error_not_a_panic() {
        let mut interner = Interner::new();
        let cases = [
            "<unclosed",
            "<rdf:RDF><daml:Class rdf:ID=></rdf:RDF>",
            "<rdf:RDF><daml:Class rdf:ID='a' badattr></rdf:RDF>",
            "<rdf:RDF><rdfs:subClassOf rdf:resource='#x'/></rdf:RDF>",
            "<a attr='unterminated>",
            "<!-- unterminated comment",
        ];
        for case in cases {
            assert!(import_damloil(case, &mut interner).is_err(), "{case:?} must fail");
        }
    }

    #[test]
    fn entities_and_attribute_quoting_variants() {
        let text = r#"<rdf:RDF>
<daml:Class rdf:ID='with&amp;entity'/>
</rdf:RDF>"#;
        let mut interner = Interner::new();
        let (ontology, report) = import_damloil(text, &mut interner).unwrap();
        assert_eq!(report.classes, 1);
        assert!(interner.get("with&entity").is_some());
        assert_eq!(ontology.taxonomy.len(), 1);
    }

    #[test]
    fn rdf_about_and_full_uri_references_resolve() {
        let text = r##"<rdf:RDF>
<daml:Class rdf:about="http://example.org/onto#vehicle"/>
<daml:Class rdf:ID="car">
  <rdfs:subClassOf rdf:resource="http://example.org/onto#vehicle"/>
</daml:Class>
</rdf:RDF>"##;
        let mut interner = Interner::new();
        let (ontology, _) = import_damloil(text, &mut interner).unwrap();
        let car = interner.get("car").unwrap();
        let vehicle = interner.get("vehicle").unwrap();
        assert!(ontology.is_a(car, vehicle));
    }

    #[test]
    fn empty_document_imports_empty_ontology() {
        let mut interner = Interner::new();
        let (ontology, report) = import_damloil("", &mut interner).unwrap();
        assert_eq!(report, ImportReport::default());
        assert!(ontology.taxonomy.is_empty());
    }
}
