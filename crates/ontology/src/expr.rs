//! Expressions for mapping-function productions.
//!
//! The paper's canonical example is
//! `professional experience = present date − graduation year` (§3.1). A
//! production's right-hand side is a small arithmetic expression over the
//! attributes bound by the function's pattern, constants, and `now` (the
//! "present date", injected by the pipeline so evaluation stays
//! deterministic).
//!
//! Evaluation is total-but-optional: type mismatches, missing attributes,
//! overflow, and division by zero yield `None`, which makes the mapping
//! function silently not fire — a malformed publication must never take
//! the matcher down.

use std::fmt;

use stopss_types::{Interner, Symbol, Value};

/// An arithmetic expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A literal value.
    Const(Value),
    /// The value bound to an attribute by the pattern (or present on the
    /// triggering event).
    Attr(Symbol),
    /// The pipeline-supplied current year ("present date").
    Now,
    /// Sum.
    Add(Box<Expr>, Box<Expr>),
    /// Difference.
    Sub(Box<Expr>, Box<Expr>),
    /// Product.
    Mul(Box<Expr>, Box<Expr>),
    /// Quotient (`None` on division by zero).
    Div(Box<Expr>, Box<Expr>),
    /// Negation.
    Neg(Box<Expr>),
    /// Minimum of two numbers.
    Min(Box<Expr>, Box<Expr>),
    /// Maximum of two numbers.
    Max(Box<Expr>, Box<Expr>),
}

/// Evaluation environment: bound attributes plus the current year.
pub struct Env<'a> {
    /// The "present date" (year granularity, like the paper's example).
    pub now_year: i64,
    /// Attribute bindings; the mapping layer backs this with the pattern
    /// bindings first and the raw event second.
    pub lookup: &'a dyn Fn(Symbol) -> Option<Value>,
}

// Constructors named after the .sto surface operators; `Expr` values are
// AST nodes, not numbers, so the std operator traits would mislead more
// than help.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// Convenience constructors keep deeply nested expressions readable.
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Add(Box::new(a), Box::new(b))
    }
    /// `a - b`.
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Sub(Box::new(a), Box::new(b))
    }
    /// `a * b`.
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Mul(Box::new(a), Box::new(b))
    }
    /// `a / b`.
    pub fn div(a: Expr, b: Expr) -> Expr {
        Expr::Div(Box::new(a), Box::new(b))
    }
    /// `-a`.
    pub fn neg(a: Expr) -> Expr {
        Expr::Neg(Box::new(a))
    }
    /// `min(a, b)`.
    pub fn min(a: Expr, b: Expr) -> Expr {
        Expr::Min(Box::new(a), Box::new(b))
    }
    /// `max(a, b)`.
    pub fn max(a: Expr, b: Expr) -> Expr {
        Expr::Max(Box::new(a), Box::new(b))
    }

    /// Evaluates the expression; `None` when it cannot produce a value.
    pub fn eval(&self, env: &Env<'_>) -> Option<Value> {
        match self {
            Expr::Const(v) => Some(*v),
            Expr::Attr(sym) => (env.lookup)(*sym),
            Expr::Now => Some(Value::Int(env.now_year)),
            Expr::Add(a, b) => numeric(a.eval(env)?, b.eval(env)?, i64::checked_add, |x, y| x + y),
            Expr::Sub(a, b) => numeric(a.eval(env)?, b.eval(env)?, i64::checked_sub, |x, y| x - y),
            Expr::Mul(a, b) => numeric(a.eval(env)?, b.eval(env)?, i64::checked_mul, |x, y| x * y),
            Expr::Div(a, b) => {
                let (a, b) = (a.eval(env)?, b.eval(env)?);
                match (a, b) {
                    (_, Value::Int(0)) => None,
                    (Value::Int(x), Value::Int(y)) => x.checked_div(y).map(Value::Int),
                    _ => {
                        let (x, y) = (a.as_f64()?, b.as_f64()?);
                        let q = x / y;
                        q.is_finite().then_some(Value::Float(q))
                    }
                }
            }
            Expr::Neg(a) => match a.eval(env)? {
                Value::Int(x) => x.checked_neg().map(Value::Int),
                Value::Float(x) => Some(Value::Float(-x)),
                _ => None,
            },
            Expr::Min(a, b) => fold_minmax(a.eval(env)?, b.eval(env)?, true),
            Expr::Max(a, b) => fold_minmax(a.eval(env)?, b.eval(env)?, false),
        }
    }

    /// Attributes referenced by the expression, in first-mention order.
    pub fn referenced_attrs(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        self.collect_attrs(&mut out);
        out
    }

    fn collect_attrs(&self, out: &mut Vec<Symbol>) {
        match self {
            Expr::Const(_) | Expr::Now => {}
            Expr::Attr(s) => {
                if !out.contains(s) {
                    out.push(*s);
                }
            }
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Min(a, b)
            | Expr::Max(a, b) => {
                a.collect_attrs(out);
                b.collect_attrs(out);
            }
            Expr::Neg(a) => a.collect_attrs(out),
        }
    }

    /// Renders the expression in the `.sto` surface syntax.
    pub fn display<'a>(&'a self, interner: &'a Interner) -> impl fmt::Display + 'a {
        ExprDisplay { expr: self, interner }
    }
}

/// Int∘Int stays Int (checked); any float operand promotes to Float.
fn numeric(
    a: Value,
    b: Value,
    int_op: impl Fn(i64, i64) -> Option<i64>,
    float_op: impl Fn(f64, f64) -> f64,
) -> Option<Value> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => int_op(x, y).map(Value::Int),
        _ => {
            let r = float_op(a.as_f64()?, b.as_f64()?);
            r.is_finite().then_some(Value::Float(r))
        }
    }
}

fn fold_minmax(a: Value, b: Value, want_min: bool) -> Option<Value> {
    let ord = a.range_cmp(&b)?;
    let a_wins = if want_min { ord.is_le() } else { ord.is_ge() };
    Some(if a_wins { a } else { b })
}

struct ExprDisplay<'a> {
    expr: &'a Expr,
    interner: &'a Interner,
}

impl fmt::Display for ExprDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(e: &Expr, i: &Interner, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match e {
                Expr::Const(Value::Sym(s)) => {
                    write!(f, "term(\"{}\")", i.try_resolve(*s).unwrap_or("<?>"))
                }
                Expr::Const(v) => write!(f, "{}", v.display(i)),
                Expr::Attr(s) => {
                    let name = i.try_resolve(*s).unwrap_or("<?>");
                    let plain = !name.is_empty()
                        && name.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
                        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
                        && !name.contains("->")
                        && !matches!(
                            name,
                            "now" | "true" | "false" | "min" | "max" | "exists" | "term"
                        );
                    if plain {
                        write!(f, "{name}")
                    } else {
                        write!(f, "\"{name}\"")
                    }
                }
                Expr::Now => f.write_str("now"),
                Expr::Add(a, b) => bin(a, "+", b, i, f),
                Expr::Sub(a, b) => bin(a, "-", b, i, f),
                Expr::Mul(a, b) => bin(a, "*", b, i, f),
                Expr::Div(a, b) => bin(a, "/", b, i, f),
                Expr::Neg(a) => {
                    f.write_str("(- ")?;
                    go(a, i, f)?;
                    f.write_str(")")
                }
                Expr::Min(a, b) => func("min", a, b, i, f),
                Expr::Max(a, b) => func("max", a, b, i, f),
            }
        }
        fn bin(
            a: &Expr,
            op: &str,
            b: &Expr,
            i: &Interner,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            f.write_str("(")?;
            go(a, i, f)?;
            write!(f, " {op} ")?;
            go(b, i, f)?;
            f.write_str(")")
        }
        fn func(
            name: &str,
            a: &Expr,
            b: &Expr,
            i: &Interner,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            write!(f, "{name}(")?;
            go(a, i, f)?;
            f.write_str(", ")?;
            go(b, i, f)?;
            f.write_str(")")
        }
        go(self.expr, self.interner, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stopss_types::FxHashMap;

    fn eval_with(expr: &Expr, bindings: &FxHashMap<Symbol, Value>, now: i64) -> Option<Value> {
        let lookup = |s: Symbol| bindings.get(&s).copied();
        expr.eval(&Env { now_year: now, lookup: &lookup })
    }

    #[test]
    fn paper_example_experience_from_graduation_year() {
        let mut i = Interner::new();
        let grad = i.intern("graduation_year");
        let expr = Expr::sub(Expr::Now, Expr::Attr(grad));
        let mut bindings = FxHashMap::default();
        bindings.insert(grad, Value::Int(1993));
        // The paper's candidate graduated 10 years before the 2003 demo.
        assert_eq!(eval_with(&expr, &bindings, 2003), Some(Value::Int(10)));
    }

    #[test]
    fn arithmetic_and_promotion() {
        let e = Expr::add(Expr::Const(Value::Int(2)), Expr::Const(Value::Float(0.5)));
        assert_eq!(eval_with(&e, &FxHashMap::default(), 0), Some(Value::Float(2.5)));
        let m = Expr::mul(Expr::Const(Value::Int(3)), Expr::Const(Value::Int(4)));
        assert_eq!(eval_with(&m, &FxHashMap::default(), 0), Some(Value::Int(12)));
        let n = Expr::neg(Expr::Const(Value::Int(7)));
        assert_eq!(eval_with(&n, &FxHashMap::default(), 0), Some(Value::Int(-7)));
    }

    #[test]
    fn division_semantics() {
        let int_div = Expr::div(Expr::Const(Value::Int(7)), Expr::Const(Value::Int(2)));
        assert_eq!(eval_with(&int_div, &FxHashMap::default(), 0), Some(Value::Int(3)));
        let by_zero = Expr::div(Expr::Const(Value::Int(7)), Expr::Const(Value::Int(0)));
        assert_eq!(eval_with(&by_zero, &FxHashMap::default(), 0), None);
        let f_by_zero = Expr::div(Expr::Const(Value::Float(1.0)), Expr::Const(Value::Float(0.0)));
        assert_eq!(
            eval_with(&f_by_zero, &FxHashMap::default(), 0),
            None,
            "infinite results are rejected"
        );
    }

    #[test]
    fn overflow_is_detected_not_wrapped() {
        let e = Expr::add(Expr::Const(Value::Int(i64::MAX)), Expr::Const(Value::Int(1)));
        assert_eq!(eval_with(&e, &FxHashMap::default(), 0), None);
        let n = Expr::neg(Expr::Const(Value::Int(i64::MIN)));
        assert_eq!(eval_with(&n, &FxHashMap::default(), 0), None);
    }

    #[test]
    fn missing_attribute_and_bad_types_fail_softly() {
        let mut i = Interner::new();
        let x = i.intern("x");
        let s = i.intern("some_term");
        let e = Expr::add(Expr::Attr(x), Expr::Const(Value::Int(1)));
        assert_eq!(eval_with(&e, &FxHashMap::default(), 0), None, "unbound attr");
        let mut b = FxHashMap::default();
        b.insert(x, Value::Sym(s));
        assert_eq!(eval_with(&e, &b, 0), None, "non-numeric operand");
    }

    #[test]
    fn min_max() {
        let lo = Expr::min(Expr::Const(Value::Int(3)), Expr::Const(Value::Float(1.5)));
        assert_eq!(eval_with(&lo, &FxHashMap::default(), 0), Some(Value::Float(1.5)));
        let hi = Expr::max(Expr::Const(Value::Int(3)), Expr::Const(Value::Float(1.5)));
        assert_eq!(eval_with(&hi, &FxHashMap::default(), 0), Some(Value::Int(3)));
        let bad = Expr::min(Expr::Const(Value::Bool(true)), Expr::Const(Value::Int(0)));
        assert_eq!(eval_with(&bad, &FxHashMap::default(), 0), None);
    }

    #[test]
    fn referenced_attrs_deduplicates() {
        let mut i = Interner::new();
        let (x, y) = (i.intern("x"), i.intern("y"));
        let e = Expr::add(Expr::Attr(x), Expr::mul(Expr::Attr(y), Expr::Attr(x)));
        assert_eq!(e.referenced_attrs(), vec![x, y]);
    }

    #[test]
    fn display_round_trips_visually() {
        let mut i = Interner::new();
        let grad = i.intern("graduation_year");
        let e = Expr::sub(Expr::Now, Expr::Attr(grad));
        assert_eq!(format!("{}", e.display(&i)), "(now - graduation_year)");
        let c = Expr::Const(Value::Sym(i.intern("cobol")));
        assert_eq!(format!("{}", c.display(&i)), "term(\"cobol\")");
        let spaced = Expr::Attr(i.intern("graduation year"));
        assert_eq!(format!("{}", spaced.display(&i)), "\"graduation year\"");
        let m = Expr::min(Expr::Const(Value::Int(1)), Expr::Now);
        assert_eq!(format!("{}", m.display(&i)), "min(1, now)");
    }
}
