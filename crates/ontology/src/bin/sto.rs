//! `sto` — command-line tooling for S-ToPSS ontologies.
//!
//! ```text
//! sto check <file.sto>         parse and report errors
//! sto stats <file.sto>         size summary (synonyms/concepts/edges/maps)
//! sto fmt <file.sto>           parse and re-emit canonical .sto text
//! sto convert <file.daml>      translate DAML+OIL (RDF/XML) to .sto
//! ```
//!
//! `fmt` and `convert` write to stdout; diagnostics go to stderr with
//! line numbers. Exit code 0 on success, 1 on usage errors, 2 on parse
//! errors.

use std::process::ExitCode;

use stopss_ontology::{import_damloil, parse_ontology, write_ontology, Ontology};
use stopss_types::Interner;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, path) = match args.as_slice() {
        [command, path] => (command.as_str(), path.as_str()),
        _ => {
            eprintln!("usage: sto <check|stats|fmt|convert> <file>");
            return ExitCode::from(1);
        }
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("sto: cannot read {path}: {e}");
            return ExitCode::from(1);
        }
    };

    let mut interner = Interner::new();
    let parsed: Result<Ontology, String> = match command {
        "convert" => import_damloil(&text, &mut interner)
            .map(|(ontology, report)| {
                eprintln!(
                    "imported {} classes, {} is-a edges, {} synonyms ({} elements skipped)",
                    report.classes, report.subclass_edges, report.synonyms, report.skipped_elements
                );
                ontology
            })
            .map_err(|e| e.to_string()),
        "check" | "stats" | "fmt" => {
            parse_ontology(&text, &mut interner).map_err(|e| e.to_string())
        }
        other => {
            eprintln!("sto: unknown command '{other}'");
            return ExitCode::from(1);
        }
    };

    let ontology = match parsed {
        Ok(ontology) => ontology,
        Err(message) => {
            eprintln!("sto: {path}: {message}");
            return ExitCode::from(2);
        }
    };

    match command {
        "check" => {
            eprintln!("{path}: ok");
        }
        "stats" => {
            let (aliases, concepts, edges, maps) = ontology.stats();
            println!("domain:            {}", ontology.name());
            println!("synonym aliases:   {aliases}");
            println!("concepts:          {concepts}");
            println!("is-a edges:        {edges}");
            println!("mapping functions: {maps}");
            println!("taxonomy roots:    {}", ontology.taxonomy.roots().len());
        }
        "fmt" | "convert" => {
            print!("{}", write_ontology(&ontology, &interner));
        }
        _ => unreachable!(),
    }
    ExitCode::SUCCESS
}
