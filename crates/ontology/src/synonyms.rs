//! Synonym tables — the first semantic stage.
//!
//! "The synonym step involves translating all event and subscription
//! attributes with different names but with the same meaning, to a 'root'
//! attribute" (§3.1). The table maps any member of a synonym group to the
//! group's canonical *root* symbol in O(1); terms outside any group resolve
//! to themselves. The same table serves attribute names and categorical
//! values — both are interned symbols.

use stopss_types::{FxHashMap, Interner, Symbol};

use crate::error::OntologyError;

/// A synonym table: alias → root, with group bookkeeping for iteration and
/// group merging.
#[derive(Default, Debug, Clone)]
pub struct SynonymTable {
    root_of: FxHashMap<Symbol, Symbol>,
    groups: FxHashMap<Symbol, Vec<Symbol>>,
}

impl SynonymTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves a term to its root. Terms without synonyms resolve to
    /// themselves; roots resolve to themselves.
    #[inline]
    pub fn resolve(&self, term: Symbol) -> Symbol {
        self.root_of.get(&term).copied().unwrap_or(term)
    }

    /// True if `term` is an alias (resolves to something else).
    pub fn is_alias(&self, term: Symbol) -> bool {
        self.resolve(term) != term
    }

    /// Declares `alias` to be a synonym of `root`.
    ///
    /// * `root` is first resolved, so chains collapse eagerly and every
    ///   lookup stays O(1).
    /// * If `alias` already heads its own group, the whole group is merged
    ///   under the resolved root.
    /// * If `alias` already belongs to a *different* group, that is a
    ///   conflict: silently re-pointing would change the meaning of
    ///   existing subscriptions. (Merging the two groups explicitly is
    ///   available via [`SynonymTable::merge_groups`].)
    pub fn add_synonym(
        &mut self,
        root: Symbol,
        alias: Symbol,
        interner: &Interner,
    ) -> Result<(), OntologyError> {
        let root = self.resolve(root);
        if alias == root {
            return Ok(()); // attaching a term to its own root is a no-op
        }
        if let Some(&existing) = self.root_of.get(&alias) {
            if existing == root {
                return Ok(());
            }
            return Err(OntologyError::SynonymConflict {
                alias: interner.try_resolve(alias).unwrap_or("<?>").to_owned(),
                existing_root: interner.try_resolve(existing).unwrap_or("<?>").to_owned(),
                new_root: interner.try_resolve(root).unwrap_or("<?>").to_owned(),
            });
        }
        // If the alias used to head a group, fold its members in.
        if let Some(members) = self.groups.remove(&alias) {
            for member in members {
                self.root_of.insert(member, root);
                self.groups.entry(root).or_default().push(member);
            }
        }
        self.root_of.insert(alias, root);
        self.groups.entry(root).or_default().push(alias);
        Ok(())
    }

    /// Merges the group of `a` into the group of `b` (keeping `b`'s root as
    /// canonical). Both terms may be plain (group-less) terms.
    pub fn merge_groups(&mut self, a: Symbol, b: Symbol) {
        let target = self.resolve(b);
        let source = self.resolve(a);
        if source == target {
            return;
        }
        let members = self.groups.remove(&source).unwrap_or_default();
        for member in members.iter().chain(std::iter::once(&source)) {
            self.root_of.insert(*member, target);
            self.groups.entry(target).or_default().push(*member);
        }
    }

    /// The members of the group rooted at `root` (not including the root).
    pub fn group(&self, root: Symbol) -> &[Symbol] {
        self.groups.get(&root).map_or(&[], |v| v.as_slice())
    }

    /// Iterates over `(root, members)` for every group.
    pub fn iter_groups(&self) -> impl Iterator<Item = (Symbol, &[Symbol])> {
        self.groups.iter().map(|(root, members)| (*root, members.as_slice()))
    }

    /// Number of alias entries (terms that resolve to something else).
    pub fn alias_count(&self) -> usize {
        self.root_of.len()
    }

    /// True if no synonyms are declared.
    pub fn is_empty(&self) -> bool {
        self.root_of.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms(i: &mut Interner, names: &[&str]) -> Vec<Symbol> {
        names.iter().map(|n| i.intern(n)).collect()
    }

    #[test]
    fn paper_example_university_school() {
        let mut i = Interner::new();
        let s = syms(&mut i, &["university", "school", "college"]);
        let mut table = SynonymTable::new();
        table.add_synonym(s[0], s[1], &i).unwrap();
        table.add_synonym(s[0], s[2], &i).unwrap();
        assert_eq!(table.resolve(s[1]), s[0]);
        assert_eq!(table.resolve(s[2]), s[0]);
        assert_eq!(table.resolve(s[0]), s[0], "roots resolve to themselves");
        assert!(table.is_alias(s[1]));
        assert!(!table.is_alias(s[0]));
    }

    #[test]
    fn unknown_terms_resolve_to_themselves() {
        let mut i = Interner::new();
        let x = i.intern("x");
        let table = SynonymTable::new();
        assert_eq!(table.resolve(x), x);
        assert!(table.is_empty());
    }

    #[test]
    fn chains_collapse_to_one_hop() {
        let mut i = Interner::new();
        let s = syms(&mut i, &["a", "b", "c"]);
        let mut table = SynonymTable::new();
        table.add_synonym(s[0], s[1], &i).unwrap(); // b -> a
        table.add_synonym(s[1], s[2], &i).unwrap(); // c -> resolve(b) = a
        assert_eq!(table.resolve(s[2]), s[0]);
    }

    #[test]
    fn alias_heading_a_group_is_folded_in() {
        let mut i = Interner::new();
        let s = syms(&mut i, &["job", "position", "role", "occupation"]);
        let mut table = SynonymTable::new();
        // position heads a group first (role -> position)...
        table.add_synonym(s[1], s[2], &i).unwrap();
        // ...then becomes an alias of job (position -> job): the whole
        // group must follow.
        table.add_synonym(s[0], s[1], &i).unwrap();
        assert_eq!(table.resolve(s[1]), s[0]);
        assert_eq!(table.resolve(s[2]), s[0]);
        table.add_synonym(s[0], s[3], &i).unwrap();
        assert_eq!(table.group(s[0]).len(), 3);
    }

    #[test]
    fn conflicting_attachment_is_rejected() {
        let mut i = Interner::new();
        let s = syms(&mut i, &["r1", "r2", "alias"]);
        let mut table = SynonymTable::new();
        table.add_synonym(s[0], s[2], &i).unwrap();
        let err = table.add_synonym(s[1], s[2], &i).unwrap_err();
        assert!(matches!(err, OntologyError::SynonymConflict { .. }));
        // Idempotent re-attachment to the same root is fine.
        table.add_synonym(s[0], s[2], &i).unwrap();
    }

    #[test]
    fn self_attachment_is_a_noop() {
        let mut i = Interner::new();
        let a = i.intern("a");
        let mut table = SynonymTable::new();
        table.add_synonym(a, a, &i).unwrap();
        assert!(table.is_empty());
        assert_eq!(table.resolve(a), a);
    }

    #[test]
    fn merge_groups_unifies_roots() {
        let mut i = Interner::new();
        let s = syms(&mut i, &["car", "auto", "vehicle", "automobile"]);
        let mut table = SynonymTable::new();
        table.add_synonym(s[0], s[1], &i).unwrap(); // auto -> car
        table.add_synonym(s[2], s[3], &i).unwrap(); // automobile -> vehicle
        table.merge_groups(s[0], s[2]); // car group joins vehicle
        for term in &s {
            assert_eq!(table.resolve(*term), s[2]);
        }
        assert_eq!(table.group(s[2]).len(), 3);
    }

    #[test]
    fn merge_is_noop_within_same_group() {
        let mut i = Interner::new();
        let s = syms(&mut i, &["a", "b"]);
        let mut table = SynonymTable::new();
        table.add_synonym(s[0], s[1], &i).unwrap();
        table.merge_groups(s[1], s[0]);
        assert_eq!(table.resolve(s[1]), s[0]);
        assert_eq!(table.alias_count(), 1);
    }

    #[test]
    fn iter_groups_sees_every_group() {
        let mut i = Interner::new();
        let s = syms(&mut i, &["a", "b", "x", "y"]);
        let mut table = SynonymTable::new();
        table.add_synonym(s[0], s[1], &i).unwrap();
        table.add_synonym(s[2], s[3], &i).unwrap();
        let mut roots: Vec<Symbol> = table.iter_groups().map(|(r, _)| r).collect();
        roots.sort_unstable();
        let mut want = vec![s[0], s[2]];
        want.sort_unstable();
        assert_eq!(roots, want);
    }
}
