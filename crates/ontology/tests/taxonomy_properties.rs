//! Property tests for the concept hierarchy: the cached ancestor rows
//! must agree with a straightforward BFS reference on random DAGs, and
//! structural invariants (acyclicity, antisymmetry, triangle inequality)
//! must hold.

use proptest::prelude::*;

use stopss_ontology::Taxonomy;
use stopss_types::{FxHashMap, Interner, Symbol};

const N: usize = 12;

fn interner_with_concepts() -> (Interner, Vec<Symbol>) {
    let mut interner = Interner::new();
    let syms = (0..N).map(|k| interner.intern(&format!("c{k}"))).collect();
    (interner, syms)
}

/// Edges `(child, parent)` with child < parent are acyclic by
/// construction; the generator draws arbitrary pairs and orients them.
fn arb_edges() -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0usize..N, 0usize..N), 0..30).prop_map(|raw| {
        raw.into_iter()
            .filter(|(a, b)| a != b)
            .map(|(a, b)| if a < b { (a, b) } else { (b, a) })
            .collect()
    })
}

/// Reference: BFS over parent edges computing minimum distances.
fn bfs_ancestors(edges: &[(usize, usize)], from: usize) -> FxHashMap<usize, u32> {
    let mut parents: Vec<Vec<usize>> = vec![Vec::new(); N];
    for &(c, p) in edges {
        if !parents[c].contains(&p) {
            parents[c].push(p);
        }
    }
    let mut dist: FxHashMap<usize, u32> = FxHashMap::default();
    let mut queue = std::collections::VecDeque::new();
    queue.push_back((from, 0u32));
    while let Some((node, d)) = queue.pop_front() {
        for &p in &parents[node] {
            if let std::collections::hash_map::Entry::Vacant(slot) = dist.entry(p) {
                slot.insert(d + 1);
                queue.push_back((p, d + 1));
            }
        }
    }
    dist
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn cached_ancestors_match_bfs_reference(edges in arb_edges()) {
        let (interner, syms) = interner_with_concepts();
        let mut taxonomy = Taxonomy::new();
        for sym in &syms {
            taxonomy.add_concept(*sym);
        }
        for &(c, p) in &edges {
            taxonomy.add_isa(syms[c], syms[p], &interner).unwrap();
        }
        for start in 0..N {
            let reference = bfs_ancestors(&edges, start);
            let mut got: Vec<(Symbol, u32)> = taxonomy.ancestors(syms[start]);
            got.sort_unstable_by_key(|(s, _)| *s);
            prop_assert_eq!(got.len(), reference.len(), "ancestor set size for c{}", start);
            for (anc, d) in got {
                let idx = syms.iter().position(|s| *s == anc).unwrap();
                prop_assert_eq!(reference.get(&idx), Some(&d), "distance c{} -> c{}", start, idx);
                // Cross-check the point queries too.
                prop_assert!(taxonomy.is_a(syms[start], anc));
                prop_assert_eq!(taxonomy.distance(syms[start], anc), Some(d));
            }
        }
    }

    #[test]
    fn is_a_is_antisymmetric_and_irreflexive(edges in arb_edges()) {
        let (interner, syms) = interner_with_concepts();
        let mut taxonomy = Taxonomy::new();
        for &(c, p) in &edges {
            taxonomy.add_isa(syms[c], syms[p], &interner).unwrap();
        }
        for a in 0..N {
            prop_assert!(!taxonomy.is_a(syms[a], syms[a]));
            for b in 0..N {
                if taxonomy.is_a(syms[a], syms[b]) {
                    prop_assert!(!taxonomy.is_a(syms[b], syms[a]), "c{a} <-> c{b}");
                }
            }
        }
    }

    #[test]
    fn distance_satisfies_triangle_inequality(edges in arb_edges()) {
        let (interner, syms) = interner_with_concepts();
        let mut taxonomy = Taxonomy::new();
        for &(c, p) in &edges {
            taxonomy.add_isa(syms[c], syms[p], &interner).unwrap();
        }
        for a in 0..N {
            for b in 0..N {
                for c in 0..N {
                    if let (Some(ab), Some(bc)) =
                        (taxonomy.distance(syms[a], syms[b]), taxonomy.distance(syms[b], syms[c]))
                    {
                        let ac = taxonomy.distance(syms[a], syms[c]);
                        prop_assert!(
                            ac.is_some() && ac.unwrap() <= ab + bc,
                            "d(c{a},c{c}) = {ac:?} > {ab} + {bc}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn descendants_invert_ancestors(edges in arb_edges()) {
        let (interner, syms) = interner_with_concepts();
        let mut taxonomy = Taxonomy::new();
        for &(c, p) in &edges {
            taxonomy.add_isa(syms[c], syms[p], &interner).unwrap();
        }
        for (a, sym) in syms.iter().enumerate() {
            for (desc, d) in taxonomy.descendants(*sym) {
                prop_assert_eq!(taxonomy.distance(desc, *sym), Some(d));
            }
            for (anc, d) in taxonomy.ancestors(*sym) {
                let descendants = taxonomy.descendants(anc);
                prop_assert!(
                    descendants.contains(&(*sym, d)),
                    "c{a} missing from descendants of its ancestor"
                );
            }
        }
    }

    #[test]
    fn closing_edges_are_rejected_and_leave_structure_intact(
        edges in arb_edges(),
        reversals in proptest::collection::vec((0usize..N, 0usize..N), 0..10),
    ) {
        let (interner, syms) = interner_with_concepts();
        let mut taxonomy = Taxonomy::new();
        for &(c, p) in &edges {
            taxonomy.add_isa(syms[c], syms[p], &interner).unwrap();
        }
        let edge_count = taxonomy.edge_count();
        // Attempt to close cycles: add (b, a) wherever a reaches b.
        for (a, b) in reversals {
            if a == b || taxonomy.is_a(syms[a], syms[b]) {
                let result = taxonomy.add_isa(syms[b], syms[a], &interner);
                if a == b || taxonomy.is_a(syms[a], syms[b]) {
                    prop_assert!(result.is_err(), "cycle c{b} -> c{a} accepted");
                }
            }
        }
        prop_assert_eq!(taxonomy.edge_count(), edge_count, "failed inserts must not mutate");
    }
}
